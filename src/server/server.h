#ifndef DVICL_SERVER_SERVER_H_
#define DVICL_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/task_pool.h"
#include "common/wire.h"
#include "dvicl/cert_cache.h"
#include "dvicl/dvicl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/access_log.h"
#include "server/flight_recorder.h"
#include "server/protocol.h"
#include "server/request_context.h"

namespace dvicl {
namespace server {

// Canonicalization-as-a-service core (DESIGN.md §11). One Server owns one
// work-stealing TaskPool and one shared CertCache; any number of
// connection-serving threads feed it. The unit of parallelism is the
// REQUEST: a connection drains up to `max_batch` already-buffered frames,
// dispatches each decoded request as one pool task (each DviCL run is
// single-threaded — many small graphs saturate the pool without nested
// parallelism), joins, and writes the replies back in request order, so a
// client always sees replies in the order it sent requests.
//
// Degradation contract:
//  - A malformed payload gets a structured error reply and the connection
//    keeps serving (length-prefix framing never desyncs on payload bytes).
//  - An oversized length prefix or an EOF inside a frame is unrecoverable:
//    the former is answered with one kMalformedFrame reply, then the
//    connection is dropped.
//  - A request that exceeds its budget (deadline / node / memory, per-class
//    defaults tightened by per-request overrides) gets an error reply
//    carrying the RunOutcome; a partial certificate never escapes and an
//    aborted run never feeds the shared CertCache (the DviclResult
//    contract), so one poisoned request cannot corrupt its batch-mates.
//  - Admission control: past `max_in_flight` concurrently admitted
//    requests, new ones are rejected with kOverloaded before decode.

// Per-class default resource budgets; 0 = unlimited. A nonzero per-request
// override replaces the class default for that request only.
struct ClassBudget {
  uint64_t deadline_micros = 0;
  uint64_t node_budget = 0;      // leaf IR search-tree node cap
  uint32_t memory_limit_mib = 0;  // RSS-delta cap per run
};

struct ServerOptions {
  // Pool width shared by all requests (0 = one per hardware thread).
  uint32_t num_threads = 0;
  // Frames drained per batch from one connection (>= 1).
  uint32_t max_batch = 16;
  // Admission cap on concurrently admitted requests across all
  // connections; 0 means zero capacity (every request is rejected with
  // kOverloaded — used by the overload tests).
  uint64_t max_in_flight = 1024;
  // Frame payload cap enforced on receive (<= wire::kMaxPayloadBytes).
  size_t max_frame_bytes = wire::kMaxPayloadBytes;

  // Leaf IR backend for all runs (the "X" of DviCL+X).
  IrPreset leaf_backend = IrPreset::kBlissLike;

  // Shared canonical-form cache across all in-flight and future requests.
  bool cert_cache = true;
  uint64_t cert_cache_max_entries = 1ull << 16;
  uint64_t cert_cache_max_bytes = 64ull << 20;

  // Arena/pool memory for every request's refine+IR hot path (DESIGN.md
  // §13). Pool worker threads persist across requests, so each worker's
  // scratch arena reaches steady state after the first few requests and
  // later ones run with near-zero allocator traffic. Replies are
  // byte-identical either way; DVICL_ARENA overrides per run.
  bool arena = true;

  // Default budgets by RequestClass index. Compute classes default to a
  // 30-second deadline; kServerStats/kServerMetrics are pure control plane
  // and unbudgeted.
  ClassBudget budgets[kNumRequestClasses] = {
      {30'000'000, 0, 0},  // kCanonicalForm
      {30'000'000, 0, 0},  // kIsoTest (each of the two runs)
      {30'000'000, 0, 0},  // kAutOrder
      {30'000'000, 0, 0},  // kOrbits
      {30'000'000, 0, 0},  // kSsmCount
      {0, 0, 0},           // kServerStats
      {0, 0, 0},           // kServerMetrics
  };

  // ---- Request-scoped observability (DESIGN.md §12) ----

  // Master switch for the per-request pipeline: timestamps, per-class
  // histograms, request trace spans, access log, and flight recorder.
  // Off = the request path pays one branch per hook (the measurement
  // baseline of scripts/check_serving_obs_overhead.sh); per-class request
  // counters and StatsSnapshot stay live either way.
  bool request_obs = true;

  // Global trace recorder for the daemon: request-level spans
  // (server.request / server.queue_wait / server.exec, each tagged with
  // the rid) plus the engine's internal spans of every request the flight
  // recorder is not intercepting. Null = no tracing. Not owned.
  obs::TraceRecorder* trace = nullptr;

  // JSONL access log path; empty = disabled. One record per request (see
  // AccessRecordJson), flushed per record, SIGHUP-rotatable in the daemon.
  std::string access_log_path;

  // Slow-request flight recorder; disabled unless flight.dir is set and at
  // least one threshold is nonzero.
  FlightRecorder::Options flight;
};

class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Serves one connected stream socket until the peer closes (or an
  // unrecoverable framing error). Blocking; safe to call concurrently from
  // any number of threads, one per connection. Does NOT close `fd`.
  void ServeConnection(int fd);

  // Same protocol over a stream pair (the --stdio daemon mode and the
  // deterministic protocol tests).
  void ServeStream(std::istream& in, std::ostream& out);

  // Handles one already-decoded request synchronously on the calling
  // thread (no admission control, no framing). The building block the
  // batch dispatcher submits to the pool; exposed for tests. The
  // two-argument form accumulates engine statistics (leaf IR nodes, cache
  // hits/misses) into `ctx` and routes the engine's trace spans to
  // ctx->engine_trace; the one-argument form is the no-observability
  // convenience wrapper.
  Reply Handle(const Request& request);
  Reply Handle(const Request& request, RequestContext* ctx);

  // Deterministically ordered counter snapshot: server counters
  // (batches, connections, decode_errors, overloaded, replies_*,
  // requests[.class]) + cache.* occupancy/activity + pool.* telemetry.
  // This is also the kServerStats reply body.
  std::vector<std::pair<std::string, uint64_t>> StatsSnapshot() const;

  const ServerOptions& options() const { return options_; }
  CertCache* cache() { return cache_.get(); }

  // Always-on per-class serving metrics (latency/bytes histograms, gauges)
  // plus whatever the engine exports; the kServerMetrics reply body and the
  // daemon's periodic dump both render from here.
  obs::MetricsRegistry* metrics() { return &metrics_; }
  // Non-const form exists for the daemon's SIGHUP rotation (Reopen()).
  AccessLog* access_log() { return access_log_.get(); }
  const AccessLog* access_log() const { return access_log_.get(); }
  const FlightRecorder* flight_recorder() const { return flight_.get(); }

 private:
  class Channel;       // framing transport abstraction (defined in .cc)
  class FdChannel;
  class StreamChannel;
  struct Slot;         // per-request batch state (defined in .cc)

  // One drained frame plus its arrival stamp (taken when the frame was
  // fully read off the connection — the start of the request lifecycle).
  struct Incoming {
    std::string payload;
    std::chrono::steady_clock::time_point arrival;
  };

  void Serve(Channel* channel);
  // Decodes, admits, dispatches and answers one drained batch, writing
  // replies in request order. Returns false when the connection must close
  // (write failure).
  bool ProcessBatch(std::vector<Incoming>* frames, Channel* channel);

  bool TryAdmit();
  DviclOptions RunOptionsFor(const Request& request,
                             RequestContext* ctx) const;
  DviclResult RunLabeling(const Graph& graph,
                          const std::vector<uint32_t>& colors,
                          const Request& request, RequestContext* ctx) const;
  Reply HandleCompute(const Request& request, RequestContext* ctx) const;
  Reply MetricsReply(const Request& request);

  // Records histograms/spans, appends the access-log record and lets the
  // flight recorder decide, once the slot's reply bytes are on the wire.
  void FinalizeRequest(Slot* slot);

  ServerOptions options_;
  std::unique_ptr<TaskPool> pool_;
  std::unique_ptr<CertCache> cache_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<AccessLog> access_log_;    // null = disabled
  std::unique_ptr<FlightRecorder> flight_;   // constructed, maybe disabled

  // Handles resolved once at construction so the per-request path records
  // with plain atomic adds (no registry lock, no name lookups).
  obs::Histogram* queue_wait_us_[kNumRequestClasses] = {};
  obs::Histogram* exec_us_[kNumRequestClasses] = {};
  obs::Histogram* total_us_[kNumRequestClasses] = {};
  obs::Histogram* request_bytes_[kNumRequestClasses] = {};
  obs::Histogram* reply_bytes_[kNumRequestClasses] = {};
  obs::Histogram* batch_depth_ = nullptr;
  obs::Gauge* in_flight_gauge_ = nullptr;
  obs::Counter* flights_recorded_ = nullptr;

  std::atomic<uint64_t> next_rid_{0};
  // Server start time: the zero point of the access log's arrival_us.
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> requests_by_class_[kNumRequestClasses] = {};
  std::atomic<uint64_t> replies_ok_{0};
  std::atomic<uint64_t> replies_error_{0};
  std::atomic<uint64_t> overloaded_{0};
  std::atomic<uint64_t> decode_errors_{0};
  // Connections dropped on a torn frame (EOF inside a length-prefixed
  // frame — a crashed/killed peer), as distinct from a clean close at a
  // frame boundary. Chaos runs watch this to prove the wire-level failure
  // mode is the one being injected.
  std::atomic<uint64_t> frames_truncated_{0};
};

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_SERVER_H_
