#include "server/protocol.h"

#include <algorithm>
#include <limits>

namespace dvicl {
namespace server {

namespace {

// Shorthand for the codec's only failure mode.
Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed request: " + what);
}

void EncodeGraph(const Graph& graph, std::span<const uint32_t> colors,
                 wire::Writer* writer) {
  writer->U32(graph.NumVertices());
  writer->U32(static_cast<uint32_t>(graph.NumEdges()));
  for (const Edge& e : graph.Edges()) {
    writer->U32(e.first);
    writer->U32(e.second);
  }
  writer->U8(colors.empty() ? 0 : 1);
  for (uint32_t color : colors) writer->U32(color);
}

// Decodes one graph section. Every declared count is checked against the
// bytes remaining BEFORE the matching allocation: a frame that declares
// m = 0xffffffff backed by twelve bytes is rejected for the lie, not
// trusted with a 32 GiB reserve. The edge-count byte math is done in
// uint64_t so the declared u32 cannot overflow the comparison.
Status DecodeGraph(wire::Reader* reader, Graph* graph,
                   std::vector<uint32_t>* colors) {
  uint32_t n = 0;
  uint32_t m = 0;
  if (!reader->U32(&n)) return Malformed("graph truncated before n");
  if (!reader->U32(&m)) return Malformed("graph truncated before m");
  if (n > kMaxWireVertices) {
    return Malformed("declared vertex count " + std::to_string(n) +
                     " exceeds kMaxWireVertices=" +
                     std::to_string(kMaxWireVertices));
  }
  const uint64_t edge_bytes = static_cast<uint64_t>(m) * 8;
  if (edge_bytes > reader->Remaining()) {
    return Malformed("declared edge count " + std::to_string(m) +
                     " exceeds the payload (" +
                     std::to_string(reader->Remaining()) + " bytes left)");
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    uint32_t u = 0;
    uint32_t v = 0;
    reader->U32(&u);  // cannot fail: edge_bytes was checked above
    reader->U32(&v);
    if (u >= n || v >= n) {
      return Malformed("edge endpoint " + std::to_string(std::max(u, v)) +
                       " out of range for n=" + std::to_string(n));
    }
    if (u == v) {
      return Malformed("self-loop at vertex " + std::to_string(u));
    }
    edges.emplace_back(u, v);
  }
  uint8_t has_colors = 0;
  if (!reader->U8(&has_colors)) {
    return Malformed("graph truncated before the color flag");
  }
  colors->clear();
  if (has_colors == 1) {
    const uint64_t color_bytes = static_cast<uint64_t>(n) * 4;
    if (color_bytes > reader->Remaining()) {
      return Malformed("declared color array exceeds the payload");
    }
    colors->reserve(n);
    for (uint32_t v = 0; v < n; ++v) {
      uint32_t color = 0;
      reader->U32(&color);
      colors->push_back(color);
    }
  } else if (has_colors != 0) {
    return Malformed("color flag must be 0 or 1");
  }
  *graph = Graph::FromEdges(n, std::move(edges));
  return Status::Ok();
}

void EncodeString(std::string_view text, wire::Writer* writer) {
  writer->U32(static_cast<uint32_t>(text.size()));
  writer->Bytes(text);
}

Status DecodeString(wire::Reader* reader, std::string* text,
                    const char* what) {
  uint32_t len = 0;
  if (!reader->U32(&len)) {
    return Malformed(std::string(what) + " truncated before its length");
  }
  std::string_view bytes;
  if (!reader->Bytes(len, &bytes)) {
    return Malformed(std::string(what) + " declared length " +
                     std::to_string(len) + " exceeds the payload");
  }
  text->assign(bytes);
  return Status::Ok();
}

}  // namespace

const char* RequestClassName(RequestClass cls) {
  switch (cls) {
    case RequestClass::kCanonicalForm:
      return "canonical_form";
    case RequestClass::kIsoTest:
      return "iso_test";
    case RequestClass::kAutOrder:
      return "aut_order";
    case RequestClass::kOrbits:
      return "orbits";
    case RequestClass::kSsmCount:
      return "ssm_count";
    case RequestClass::kServerStats:
      return "server_stats";
    case RequestClass::kServerMetrics:
      return "server_metrics";
  }
  return "unknown";
}

void EncodeRequest(const Request& request, std::string* payload) {
  wire::Writer writer(payload);
  writer.U64(request.id);
  writer.U8(static_cast<uint8_t>(request.cls));
  writer.U8(0);  // reserved
  writer.U64(request.deadline_micros);
  writer.U64(request.node_budget);
  writer.U32(request.memory_limit_mib);
  switch (request.cls) {
    case RequestClass::kCanonicalForm:
    case RequestClass::kAutOrder:
    case RequestClass::kOrbits:
      EncodeGraph(request.graph, request.colors, &writer);
      break;
    case RequestClass::kIsoTest:
      EncodeGraph(request.graph, request.colors, &writer);
      EncodeGraph(request.graph2, request.colors2, &writer);
      break;
    case RequestClass::kSsmCount:
      EncodeGraph(request.graph, request.colors, &writer);
      writer.U32(static_cast<uint32_t>(request.query.size()));
      for (VertexId v : request.query) writer.U32(v);
      break;
    case RequestClass::kServerStats:
    case RequestClass::kServerMetrics:
      break;
  }
}

Status DecodeRequest(std::string_view payload, Request* request) {
  wire::Reader reader(payload);
  Request out;
  uint8_t cls = 0;
  uint8_t reserved = 0;
  if (!reader.U64(&out.id) || !reader.U8(&cls) || !reader.U8(&reserved) ||
      !reader.U64(&out.deadline_micros) || !reader.U64(&out.node_budget) ||
      !reader.U32(&out.memory_limit_mib)) {
    return Malformed("truncated request header");
  }
  if (cls >= kNumRequestClasses) {
    return Malformed("unknown request class " + std::to_string(cls));
  }
  if (reserved != 0) {
    return Malformed("reserved header byte must be zero");
  }
  out.cls = static_cast<RequestClass>(cls);
  switch (out.cls) {
    case RequestClass::kCanonicalForm:
    case RequestClass::kAutOrder:
    case RequestClass::kOrbits: {
      Status status = DecodeGraph(&reader, &out.graph, &out.colors);
      if (!status.ok()) return status;
      break;
    }
    case RequestClass::kIsoTest: {
      Status status = DecodeGraph(&reader, &out.graph, &out.colors);
      if (!status.ok()) return status;
      status = DecodeGraph(&reader, &out.graph2, &out.colors2);
      if (!status.ok()) return status;
      break;
    }
    case RequestClass::kSsmCount: {
      Status status = DecodeGraph(&reader, &out.graph, &out.colors);
      if (!status.ok()) return status;
      uint32_t k = 0;
      if (!reader.U32(&k)) return Malformed("truncated query length");
      const uint64_t query_bytes = static_cast<uint64_t>(k) * 4;
      if (query_bytes > reader.Remaining()) {
        return Malformed("declared query size " + std::to_string(k) +
                         " exceeds the payload");
      }
      if (k > out.graph.NumVertices()) {
        return Malformed("query larger than the vertex set");
      }
      out.query.reserve(k);
      for (uint32_t i = 0; i < k; ++i) {
        uint32_t v = 0;
        reader.U32(&v);
        if (v >= out.graph.NumVertices()) {
          return Malformed("query vertex " + std::to_string(v) +
                           " out of range");
        }
        out.query.push_back(v);
      }
      std::vector<VertexId> sorted = out.query;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
        return Malformed("query contains a duplicate vertex");
      }
      break;
    }
    case RequestClass::kServerStats:
    case RequestClass::kServerMetrics:
      break;
  }
  if (!reader.AtEnd()) {
    return Malformed(std::to_string(reader.Remaining()) +
                     " trailing garbage bytes after the request body");
  }
  *request = std::move(out);
  return Status::Ok();
}

void EncodeReply(const Reply& reply, std::string* payload) {
  wire::Writer writer(payload);
  writer.U64(reply.id);
  writer.U8(static_cast<uint8_t>(reply.status));
  writer.U8(static_cast<uint8_t>(reply.cls));
  if (!reply.ok()) {
    EncodeString(reply.detail, &writer);
    return;
  }
  switch (reply.cls) {
    case RequestClass::kCanonicalForm:
      writer.U32(reply.num_vertices);
      writer.U64(reply.certificate.size());
      for (uint64_t word : reply.certificate) writer.U64(word);
      for (VertexId label : reply.canonical_labeling) writer.U32(label);
      break;
    case RequestClass::kIsoTest:
      writer.U8(reply.isomorphic ? 1 : 0);
      break;
    case RequestClass::kAutOrder:
      EncodeString(reply.aut_order, &writer);
      break;
    case RequestClass::kOrbits:
      writer.U32(static_cast<uint32_t>(reply.orbit_ids.size()));
      for (VertexId id : reply.orbit_ids) writer.U32(id);
      break;
    case RequestClass::kSsmCount:
      EncodeString(reply.ssm_count, &writer);
      break;
    case RequestClass::kServerStats:
      writer.U32(static_cast<uint32_t>(reply.stats.size()));
      for (const auto& [name, value] : reply.stats) {
        EncodeString(name, &writer);
        writer.U64(value);
      }
      break;
    case RequestClass::kServerMetrics:
      writer.U32(static_cast<uint32_t>(reply.stats.size()));
      for (const auto& [name, value] : reply.stats) {
        EncodeString(name, &writer);
        writer.U64(value);
      }
      EncodeString(reply.metrics_json, &writer);
      break;
  }
}

Status DecodeReply(std::string_view payload, Reply* reply) {
  wire::Reader reader(payload);
  Reply out;
  uint8_t status_byte = 0;
  uint8_t cls = 0;
  if (!reader.U64(&out.id) || !reader.U8(&status_byte) || !reader.U8(&cls)) {
    return Malformed("truncated reply header");
  }
  if (status_byte > static_cast<uint8_t>(wire::WireStatus::kMalformedFrame)) {
    return Malformed("unknown reply status " + std::to_string(status_byte));
  }
  if (cls >= kNumRequestClasses) {
    return Malformed("unknown reply class " + std::to_string(cls));
  }
  out.status = static_cast<wire::WireStatus>(status_byte);
  out.cls = static_cast<RequestClass>(cls);
  if (!out.ok()) {
    Status status = DecodeString(&reader, &out.detail, "error detail");
    if (!status.ok()) return status;
    if (!reader.AtEnd()) return Malformed("trailing bytes after error reply");
    *reply = std::move(out);
    return Status::Ok();
  }
  switch (out.cls) {
    case RequestClass::kCanonicalForm: {
      if (!reader.U32(&out.num_vertices)) {
        return Malformed("truncated canonical reply");
      }
      uint64_t words = 0;
      if (!reader.U64(&words)) return Malformed("truncated certificate size");
      const uint64_t cert_bytes = words * 8;
      if (words > std::numeric_limits<uint64_t>::max() / 8 ||
          cert_bytes > reader.Remaining()) {
        return Malformed("declared certificate size exceeds the payload");
      }
      out.certificate.reserve(words);
      for (uint64_t i = 0; i < words; ++i) {
        uint64_t word = 0;
        reader.U64(&word);
        out.certificate.push_back(word);
      }
      const uint64_t label_bytes = static_cast<uint64_t>(out.num_vertices) * 4;
      if (label_bytes > reader.Remaining()) {
        return Malformed("declared labeling exceeds the payload");
      }
      out.canonical_labeling.reserve(out.num_vertices);
      for (uint32_t v = 0; v < out.num_vertices; ++v) {
        uint32_t label = 0;
        reader.U32(&label);
        out.canonical_labeling.push_back(label);
      }
      break;
    }
    case RequestClass::kIsoTest: {
      uint8_t verdict = 0;
      if (!reader.U8(&verdict)) return Malformed("truncated iso verdict");
      if (verdict > 1) return Malformed("iso verdict must be 0 or 1");
      out.isomorphic = verdict == 1;
      break;
    }
    case RequestClass::kAutOrder: {
      Status status = DecodeString(&reader, &out.aut_order, "aut order");
      if (!status.ok()) return status;
      break;
    }
    case RequestClass::kOrbits: {
      uint32_t n = 0;
      if (!reader.U32(&n)) return Malformed("truncated orbit count");
      const uint64_t orbit_bytes = static_cast<uint64_t>(n) * 4;
      if (orbit_bytes > reader.Remaining()) {
        return Malformed("declared orbit array exceeds the payload");
      }
      out.orbit_ids.reserve(n);
      for (uint32_t v = 0; v < n; ++v) {
        uint32_t id = 0;
        reader.U32(&id);
        out.orbit_ids.push_back(id);
      }
      break;
    }
    case RequestClass::kSsmCount: {
      Status status = DecodeString(&reader, &out.ssm_count, "ssm count");
      if (!status.ok()) return status;
      break;
    }
    case RequestClass::kServerStats: {
      uint32_t count = 0;
      if (!reader.U32(&count)) return Malformed("truncated stats count");
      // Each entry is at least 12 bytes (empty name); bound before reserve.
      if (static_cast<uint64_t>(count) * 12 > reader.Remaining()) {
        return Malformed("declared stats count exceeds the payload");
      }
      out.stats.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        std::string name;
        Status status = DecodeString(&reader, &name, "stat name");
        if (!status.ok()) return status;
        uint64_t value = 0;
        if (!reader.U64(&value)) return Malformed("truncated stat value");
        out.stats.emplace_back(std::move(name), value);
      }
      break;
    }
    case RequestClass::kServerMetrics: {
      uint32_t count = 0;
      if (!reader.U32(&count)) return Malformed("truncated metrics count");
      // Each entry is at least 12 bytes (empty name); bound before reserve.
      if (static_cast<uint64_t>(count) * 12 > reader.Remaining()) {
        return Malformed("declared metrics count exceeds the payload");
      }
      out.stats.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        std::string name;
        Status status = DecodeString(&reader, &name, "metric name");
        if (!status.ok()) return status;
        uint64_t value = 0;
        if (!reader.U64(&value)) return Malformed("truncated metric value");
        out.stats.emplace_back(std::move(name), value);
      }
      Status status =
          DecodeString(&reader, &out.metrics_json, "metrics JSON dump");
      if (!status.ok()) return status;
      break;
    }
  }
  if (!reader.AtEnd()) {
    return Malformed("trailing bytes after the reply body");
  }
  *reply = std::move(out);
  return Status::Ok();
}

uint64_t PeekRequestId(std::string_view payload) {
  wire::Reader reader(payload);
  uint64_t id = 0;
  if (!reader.U64(&id)) return 0;
  return id;
}

}  // namespace server
}  // namespace dvicl
