#ifndef DVICL_SERVER_FLIGHT_RECORDER_H_
#define DVICL_SERVER_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/trace.h"
#include "server/request_context.h"

namespace dvicl {
namespace server {

// Slow-request flight recorder (DESIGN.md §12): while armed, every
// dispatched request runs its engine against a private TraceRecorder; when
// the finished request crosses a latency or node-count threshold the
// buffer is persisted together with the request's access-log record as
//   <dir>/flight_<rid>.json  =  {"access": {...}, "trace": {...}}
// so a slow request can be reconstructed post-hoc — phase timings, cache
// result, outcome, and the full span tree — with zero reruns. Fast
// requests cost one heap-allocated recorder that is dropped on the floor.
class FlightRecorder {
 public:
  struct Options {
    std::string dir;  // empty = flight recording disabled

    // Trigger thresholds; 0 disables that dimension. A request fires when
    // total latency >= latency_threshold_us OR leaf IR nodes >=
    // node_threshold (and at least one dimension is armed).
    uint64_t latency_threshold_us = 0;
    uint64_t node_threshold = 0;
  };

  explicit FlightRecorder(Options options);

  bool enabled() const { return enabled_; }

  // Fresh per-request trace buffer for the engine spans of one dispatched
  // request. (A private recorder per request keeps the persisted trace
  // scoped to the offending request even when pool threads interleave.)
  std::unique_ptr<obs::TraceRecorder> Arm() const {
    return std::make_unique<obs::TraceRecorder>();
  }

  bool ShouldPersist(uint64_t total_us, uint64_t leaf_ir_nodes) const;

  // Writes the flight file for `ctx`. The caller guarantees the recorder
  // is quiescent (the request's pool task has been joined). Returns false
  // on I/O failure.
  bool Persist(const RequestContext& ctx, const std::string& access_record,
               const obs::TraceRecorder& trace) const;

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  const Options options_;
  bool enabled_ = false;
  mutable std::atomic<uint64_t> recorded_{0};
};

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_FLIGHT_RECORDER_H_
