#ifndef DVICL_SERVER_ACCESS_LOG_H_
#define DVICL_SERVER_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "server/request_context.h"

namespace dvicl {
namespace server {

// Timings derived from a finished RequestContext, in microseconds. Computed
// once by the server (which owns the clock reads) and shared between the
// access-log record, the per-class histograms, and the request-level trace
// spans so all three always agree.
struct RequestTimings {
  uint64_t queue_us = 0;    // arrival -> dequeue (0 for rejected frames)
  uint64_t exec_us = 0;     // dequeue -> handler return
  uint64_t total_us = 0;    // arrival -> reply written
  uint64_t arrival_us = 0;  // arrival relative to server start
};

// One JSON object (single line, no trailing newline) describing a finished
// request — the access-log record schema (DESIGN.md §12):
//   rid, id, class, status, ok, queue_us, exec_us, total_us, arrival_us,
//   request_bytes, reply_bytes, cache_hit, cache_hits, cache_misses,
//   leaf_ir_nodes
// The same record is embedded in flight-recorder files, so post-hoc
// reconstruction of a slow request needs no extra join logic.
std::string AccessRecordJson(const RequestContext& ctx,
                             const RequestTimings& timings);

// Append-only JSONL sink: one AccessRecordJson line per finished request.
// Writes are mutex-serialized and flushed per record (a crashed daemon
// keeps every request it answered), and Reopen() re-opens the same path so
// an external rotator can rename the file and HUP the daemon without
// losing records. All methods are thread-safe.
class AccessLog {
 public:
  // Opens `path` for appending. ok() reports open failure; Append on a
  // failed log is a no-op, so a bad path degrades to "no access log"
  // rather than taking the server down.
  explicit AccessLog(const std::string& path);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  bool ok() const;

  // Writes `record` plus a newline and flushes.
  void Append(const std::string& record);

  // Closes and re-opens the configured path (rotation support). Records
  // racing the reopen land in either the old or the new file, never lost.
  bool Reopen();

  uint64_t records_written() const;

 private:
  const std::string path_;
  // Last in the global lock order (common/mutex.h): held across one
  // fwrite+fflush, nothing is acquired under it.
  mutable Mutex mu_;
  FILE* file_ DVICL_GUARDED_BY(mu_) = nullptr;
  uint64_t records_ DVICL_GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_ACCESS_LOG_H_
