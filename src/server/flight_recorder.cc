#include "server/flight_recorder.h"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace dvicl {
namespace server {

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) return;
  if (options_.latency_threshold_us == 0 && options_.node_threshold == 0) {
    return;  // a directory with no armed trigger never fires
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  enabled_ = !ec;
}

bool FlightRecorder::ShouldPersist(uint64_t total_us,
                                   uint64_t leaf_ir_nodes) const {
  if (!enabled_) return false;
  if (options_.latency_threshold_us != 0 &&
      total_us >= options_.latency_threshold_us) {
    return true;
  }
  return options_.node_threshold != 0 &&
         leaf_ir_nodes >= options_.node_threshold;
}

bool FlightRecorder::Persist(const RequestContext& ctx,
                             const std::string& access_record,
                             const obs::TraceRecorder& trace) const {
  const std::string path = (std::filesystem::path(options_.dir) /
                            ("flight_" + std::to_string(ctx.rid) + ".json"))
                               .string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  // Both members are pre-rendered JSON, so the file is valid JSON by
  // construction: {"access": <record>, "trace": <chrome trace object>}.
  out << "{\"access\":" << access_record << ",\"trace\":" << trace.ToJson()
      << "}\n";
  if (!out) return false;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace server
}  // namespace dvicl
