#ifndef DVICL_SERVER_REQUEST_CONTEXT_H_
#define DVICL_SERVER_REQUEST_CONTEXT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/wire.h"
#include "server/protocol.h"

namespace dvicl {
namespace obs {
class TraceRecorder;
}  // namespace obs

namespace server {

// Per-request observability state, created when a frame is pulled off the
// connection and carried through dispatch, execution, and reply writing
// (DESIGN.md §12). One RequestContext backs one access-log record, one
// `server.request` trace span, and one sample in each per-class latency
// histogram; the flight recorder decides from it whether the request's
// engine trace is worth persisting.
//
// Timestamps are raw steady-clock points rather than trace-relative
// microseconds so the same context can be rendered against any recorder
// epoch (global daemon trace vs. a per-request flight buffer).
struct RequestContext {
  // Server-assigned id: strictly monotonic across every request the server
  // ever admits (including rejected/undecodable frames), independent of the
  // client-chosen wire id. This is the join key between access log, trace
  // span args, and flight-recorder files.
  uint64_t rid = 0;

  uint64_t client_id = 0;  // wire request id (client-chosen, best-effort)
  RequestClass cls = RequestClass::kCanonicalForm;
  wire::WireStatus status = wire::WireStatus::kInternalFault;

  std::chrono::steady_clock::time_point arrival{};  // frame fully read
  std::chrono::steady_clock::time_point dequeue{};  // pool thread picked up
  std::chrono::steady_clock::time_point done{};     // handler returned

  size_t request_bytes = 0;  // frame payload size
  size_t reply_bytes = 0;    // encoded reply payload size

  // Engine statistics accumulated across the request's runs (kIsoTest runs
  // the engine twice; the totals are summed).
  uint64_t leaf_ir_nodes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // Where the engine's internal spans for this request go: the per-request
  // flight buffer when the flight recorder is armed, else the server's
  // global recorder, else null. Request-level spans (server.request,
  // server.queue_wait, server.exec) always target the global recorder.
  obs::TraceRecorder* engine_trace = nullptr;

  bool cache_hit() const { return cache_hits > 0; }
};

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_REQUEST_CONTEXT_H_
