#include "server/access_log.h"

#include "obs/json_writer.h"

namespace dvicl {
namespace server {

std::string AccessRecordJson(const RequestContext& ctx,
                             const RequestTimings& timings) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("rid");
  writer.Uint(ctx.rid);
  writer.Key("id");
  writer.Uint(ctx.client_id);
  writer.Key("class");
  writer.String(RequestClassName(ctx.cls));
  writer.Key("status");
  writer.String(wire::WireStatusName(ctx.status));
  writer.Key("ok");
  writer.Bool(ctx.status == wire::WireStatus::kOk);
  writer.Key("queue_us");
  writer.Uint(timings.queue_us);
  writer.Key("exec_us");
  writer.Uint(timings.exec_us);
  writer.Key("total_us");
  writer.Uint(timings.total_us);
  writer.Key("arrival_us");
  writer.Uint(timings.arrival_us);
  writer.Key("request_bytes");
  writer.Uint(ctx.request_bytes);
  writer.Key("reply_bytes");
  writer.Uint(ctx.reply_bytes);
  writer.Key("cache_hit");
  writer.Bool(ctx.cache_hit());
  writer.Key("cache_hits");
  writer.Uint(ctx.cache_hits);
  writer.Key("cache_misses");
  writer.Uint(ctx.cache_misses);
  writer.Key("leaf_ir_nodes");
  writer.Uint(ctx.leaf_ir_nodes);
  writer.EndObject();
  return writer.Take();
}

AccessLog::AccessLog(const std::string& path) : path_(path) {
  MutexLock lock(mu_);
  file_ = std::fopen(path_.c_str(), "ab");
}

AccessLog::~AccessLog() {
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

bool AccessLog::ok() const {
  MutexLock lock(mu_);
  return file_ != nullptr;
}

void AccessLog::Append(const std::string& record) {
  MutexLock lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(record.data(), 1, record.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  ++records_;
}

bool AccessLog::Reopen() {
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  return file_ != nullptr;
}

uint64_t AccessLog::records_written() const {
  MutexLock lock(mu_);
  return records_;
}

}  // namespace server
}  // namespace dvicl
