#ifndef DVICL_SERVER_CLIENT_H_
#define DVICL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace dvicl {
namespace server {

// Blocking client for the canonicalization service: frames requests onto a
// connected stream socket and decodes framed replies. One Client per
// connection; not thread-safe (callers wanting concurrency open one client
// per thread, which is also how the load generator models independent
// connections).
class Client {
 public:
  // Adopts a connected stream socket (e.g. one end of a socketpair in the
  // loopback tests); the Client owns and closes it.
  explicit Client(int fd) : fd_(fd) {}
  ~Client();

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to a TCP endpoint, e.g. ("127.0.0.1", port).
  static Result<Client> ConnectTcp(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Frames and sends one request (does not wait for the reply; pipelining
  // multiple Sends before Receives is how a client forms a server batch).
  Status Send(const Request& request);

  // Blocks for the next framed reply. NotFound = clean server close.
  Status Receive(Reply* reply);

  // Send + Receive for the common one-at-a-time call.
  Result<Reply> Call(const Request& request);

  // Control-plane conveniences: one kServerStats / kServerMetrics round
  // trip with a fresh request id. FetchMetrics returns the flattened
  // (name, value) pairs in Reply::stats and the registry JSON dump in
  // Reply::metrics_json.
  Result<Reply> FetchStats(uint64_t request_id = 0);
  Result<Reply> FetchMetrics(uint64_t request_id = 0);

  // Half-closes the send direction so the server sees EOF and finishes
  // the connection while replies can still be read.
  void FinishSending();

 private:
  int fd_ = -1;
};

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_CLIENT_H_
