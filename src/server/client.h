#ifndef DVICL_SERVER_CLIENT_H_
#define DVICL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "server/protocol.h"

namespace dvicl {
namespace server {

// Blocking client for the canonicalization service: frames requests onto a
// connected stream socket and decodes framed replies. One Client per
// connection; not thread-safe (callers wanting concurrency open one client
// per thread, which is also how the load generator models independent
// connections).
//
// I/O deadlines (the supervised-serving robustness contract, DESIGN.md
// §15): set_deadline_ms(D) bounds every subsequent Send/Receive to D
// milliseconds of wall clock via poll()-based non-blocking I/O. A deadline
// expiry returns Status::DeadlineExceeded AND closes the connection — the
// stream may hold a half-read frame, so no later call may trust it. The
// same poisoning applies to a torn frame (EOF inside a frame, the
// signature of a SIGKILLed peer): IOError, connection closed. A clean
// server close at a frame boundary stays NotFound and leaves the fd open
// (the send half may still be useful). Deadline 0 = block forever (the
// pre-supervision behavior).
class Client {
 public:
  // Adopts a connected stream socket (e.g. one end of a socketpair in the
  // loopback tests); the Client owns and closes it. The socket is switched
  // to non-blocking mode — all Client I/O goes through poll()-based loops.
  explicit Client(int fd);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to a TCP endpoint, e.g. ("127.0.0.1", port).
  static Result<Client> ConnectTcp(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Per-call I/O deadline for Send/Receive; 0 = block forever.
  void set_deadline_ms(uint64_t deadline_ms) { deadline_ms_ = deadline_ms; }
  uint64_t deadline_ms() const { return deadline_ms_; }

  // Frames and sends one request (does not wait for the reply; pipelining
  // multiple Sends before Receives is how a client forms a server batch).
  // DeadlineExceeded after deadline_ms of blocked writing (connection
  // closed: an unknown prefix of the frame may be on the wire).
  Status Send(const Request& request);

  // Blocks for the next framed reply. NotFound = clean server close;
  // IOError = torn frame / read error (connection closed); DeadlineExceeded
  // = no full reply within deadline_ms (connection closed).
  Status Receive(Reply* reply);

  // Send + Receive for the common one-at-a-time call.
  Result<Reply> Call(const Request& request);

  // Control-plane conveniences: one kServerStats / kServerMetrics round
  // trip with a fresh request id. FetchMetrics returns the flattened
  // (name, value) pairs in Reply::stats and the registry JSON dump in
  // Reply::metrics_json.
  Result<Reply> FetchStats(uint64_t request_id = 0);
  Result<Reply> FetchMetrics(uint64_t request_id = 0);

  // Half-closes the send direction so the server sees EOF and finishes
  // the connection while replies can still be read.
  void FinishSending();

 private:
  void Close();

  int fd_ = -1;
  uint64_t deadline_ms_ = 0;
};

// ---- retrying, reconnecting, failing-over client --------------------------

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

// Parses "HOST:P1[,P2,...]" into one endpoint per port (a supervised
// daemon exposes one port per worker). Returns an empty vector on a
// malformed spec.
std::vector<Endpoint> ParseEndpoints(const std::string& spec);

struct RetryOptions {
  // Total attempts per Call (first try included). 1 = no retries.
  uint32_t max_attempts = 4;
  // Reconnect/retry backoff: initial * 2^k, capped, each delay jittered
  // uniformly over [delay/2, delay] so a restarted worker is not hit by a
  // synchronized thundering herd of retriers.
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_max_ms = 2000;
  // Jitter seed (deterministic per client; mix in a per-connection salt
  // when running many clients).
  uint64_t seed = 1;
  // Per-attempt I/O deadline for send+receive (0 = block forever — do not
  // use against a supervised fleet, a hung worker would hang the caller).
  uint64_t io_deadline_ms = 10'000;
  // Overall wall-clock budget for one Call including every retry, backoff
  // and reconnect (0 = unbounded). The remaining budget is also propagated
  // into the request's own deadline_micros, so a retried request can never
  // burn more engine time than the caller's original deadline allows.
  uint64_t overall_deadline_ms = 0;
  // Retry kOverloaded replies (admission-control pushback) after backoff.
  bool retry_overloaded = true;
};

// Client wrapper implementing the client half of the supervised-serving
// robustness contract: poll()-based I/O deadlines, reconnect with jittered
// exponential backoff, endpoint failover across a worker fleet, and a
// bounded retry budget for idempotent requests.
//
// Retrying is safe because every compute class is a pure function of the
// request (canonical form, iso verdict, |Aut|, orbits, SSM count): a
// request that was lost, half-executed by a crashed worker, or even fully
// executed with the reply lost, returns byte-identical results when re-sent
// — to the same worker or any other. Retried conditions: connection loss
// (IOError/NotFound), I/O deadline expiry, and kOverloaded replies.
// Structured errors (budget exhaustion, invalid request) are the caller's
// answer and are never retried.
//
// Not thread-safe (same model as Client: one RobustClient per thread).
class RobustClient {
 public:
  struct Stats {
    uint64_t calls = 0;        // Call() invocations
    uint64_t attempts = 0;     // request transmissions (>= calls)
    uint64_t retries = 0;      // attempts beyond the first of their call
    uint64_t reconnects = 0;   // successful (re)connections
    uint64_t overloaded_retries = 0;  // retries caused by kOverloaded
    uint64_t deadline_failures = 0;   // Calls lost to DeadlineExceeded
  };

  RobustClient(std::vector<Endpoint> endpoints, RetryOptions options = {});

  // One idempotent request, retried within the options' budgets. Returns
  // the first decoded reply (success or structured server-side error), or
  // a transport Status once the retry/deadline budget is exhausted.
  Result<Reply> Call(const Request& request);

  const Stats& stats() const { return stats_; }
  // Endpoint index the live connection points at (for tests).
  size_t endpoint_index() const { return cursor_; }
  bool connected() const { return client_.has_value() && client_->connected(); }
  // Drops the live connection (next Call reconnects).
  void Disconnect();

 private:
  // Connects to the cursor endpoint, rotating through the fleet on
  // failure; at most one full rotation per invocation.
  Status Connect(uint64_t deadline_ms_remaining);
  uint64_t NextBackoffMs();

  std::vector<Endpoint> endpoints_;
  RetryOptions options_;
  Rng rng_;
  std::optional<Client> client_;
  size_t cursor_ = 0;          // endpoint of the live/next connection
  uint32_t backoff_exponent_ = 0;  // reset on any successful reply
  Stats stats_;
};

}  // namespace server
}  // namespace dvicl

#endif  // DVICL_SERVER_CLIENT_H_
