#ifndef DVICL_REFINE_REFINER_H_
#define DVICL_REFINE_REFINER_H_

#include <span>

#include "graph/graph.h"
#include "refine/coloring.h"

namespace dvicl {

// Equitable refinement — the refinement function R of paper §4, implemented
// as 1-dimensional Weisfeiler-Lehman partition refinement [33] with
// Hopcroft's "all but the largest fragment" worklist rule.
//
// The resulting ordered partition is the coarsest equitable coloring finer
// than the input, and its cell ORDER is isomorphism-invariant: fragments are
// ordered by ascending neighbor count, so R(G^gamma, pi^gamma) =
// R(G, pi)^gamma — property (iii) of a refinement function.

// Refines *pi in place until it is equitable with respect to `graph`,
// using every current cell as an initial splitter.
void RefineToEquitable(const Graph& graph, Coloring* pi);

// Incremental variant: assumes *pi was equitable except for the listed
// seed cells (e.g. after Coloring::Individualize, pass the singleton and
// remainder cell starts).
void RefineFrom(const Graph& graph, Coloring* pi,
                std::span<const VertexId> seed_cell_starts);

// Verification helper (used by tests): true iff every pair of cells
// (Vi, Vj) has uniform neighbor counts, the definition in paper §2.
bool IsEquitable(const Graph& graph, const Coloring& pi);

// DVICL_DCHECK verifier (no-op unless built with -DDVICL_DCHECK=ON): aborts
// with a diagnostic unless `pi` is internally consistent AND equitable with
// respect to `graph`. Runs automatically at the end of RefineToEquitable /
// RefineFrom, i.e. after every refinement anywhere in the system — the
// DviCL root, every IR search node, the signature hash. Uses the
// O(m log deg) neighbor-color-profile formulation (equitable <=> within
// every cell, all members see identical multisets of neighbor colors)
// rather than the O(cells * (n + m)) pairwise definition in IsEquitable, so
// it is affordable on every call even in stress tests.
void VerifyEquitable(const Graph& graph, const Coloring& pi);

// Isomorphism-invariant hash of the refinement outcome of (graph, initial):
// refines a copy of `initial` to equitable and hashes the resulting cell
// structure (cell count, per-cell start offset and size) together with the
// quotient matrix (for each ordered cell pair (i, j), how many neighbors a
// vertex of Vi has in Vj — well-defined because the coloring is equitable).
// Because the refiner's cell ORDER is isomorphism-invariant (property (iii),
// see above), relabeling the graph and permuting `initial` accordingly
// yields the same hash: this is the "refine-trace" component of the
// canonical-form cache key (dvicl/cert_cache.h). Cost: one refinement plus
// O(n + m); it does not touch the thread-local work counters' semantics
// (the refinement work it performs is counted like any other). The refined
// copy and rank/row scratch are carved from `scratch` under an ArenaFrame
// when one is supplied (heap otherwise).
uint64_t EquitableSignatureHash(const Graph& graph, const Coloring& initial,
                                Arena* scratch = nullptr);

// Per-thread monotone counters of refinement work, always maintained (a
// thread-local increment costs nothing measurable, so there is no off
// switch). Observability consumers snapshot the value before and after a
// region on the same thread and attribute the delta to that region; the
// DviCL driver aggregates the deltas into DviclStats::refine_splitters /
// refine_cell_splits across its build tasks.
uint64_t ThreadRefineSplitters();   // splitter cells dequeued and applied
uint64_t ThreadRefineCellSplits();  // new fragments produced by splits

}  // namespace dvicl

#endif  // DVICL_REFINE_REFINER_H_
