#ifndef DVICL_REFINE_REFINER_H_
#define DVICL_REFINE_REFINER_H_

#include <span>

#include "graph/graph.h"
#include "refine/coloring.h"

namespace dvicl {

// Equitable refinement — the refinement function R of paper §4, implemented
// as 1-dimensional Weisfeiler-Lehman partition refinement [33] with
// Hopcroft's "all but the largest fragment" worklist rule.
//
// The resulting ordered partition is the coarsest equitable coloring finer
// than the input, and its cell ORDER is isomorphism-invariant: fragments are
// ordered by ascending neighbor count, so R(G^gamma, pi^gamma) =
// R(G, pi)^gamma — property (iii) of a refinement function.

// Refines *pi in place until it is equitable with respect to `graph`,
// using every current cell as an initial splitter.
void RefineToEquitable(const Graph& graph, Coloring* pi);

// Incremental variant: assumes *pi was equitable except for the listed
// seed cells (e.g. after Coloring::Individualize, pass the singleton and
// remainder cell starts).
void RefineFrom(const Graph& graph, Coloring* pi,
                std::span<const VertexId> seed_cell_starts);

// Verification helper (used by tests): true iff every pair of cells
// (Vi, Vj) has uniform neighbor counts, the definition in paper §2.
bool IsEquitable(const Graph& graph, const Coloring& pi);

// Per-thread monotone counters of refinement work, always maintained (a
// thread-local increment costs nothing measurable, so there is no off
// switch). Observability consumers snapshot the value before and after a
// region on the same thread and attribute the delta to that region; the
// DviCL driver aggregates the deltas into DviclStats::refine_splitters /
// refine_cell_splits across its build tasks.
uint64_t ThreadRefineSplitters();   // splitter cells dequeued and applied
uint64_t ThreadRefineCellSplits();  // new fragments produced by splits

}  // namespace dvicl

#endif  // DVICL_REFINE_REFINER_H_
