#ifndef DVICL_REFINE_COLORING_H_
#define DVICL_REFINE_COLORING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "perm/permutation.h"

namespace dvicl {

// An ordered partition pi = [V1 | V2 | ... | Vk] of the vertex set
// (paper §2 "Coloring"). Cells are contiguous segments of a vertex array,
// so the color of a vertex — defined in the paper as the sum of the sizes
// of the preceding cells — is simply the start index of its segment.
//
// The representation supports the two mutations canonical-labeling needs:
// splitting a cell into ordered fragments (refinement) and individualizing
// a vertex (paper §4). Both keep all other cells' positions intact, which
// is what makes cell start indices stable identifiers for the refinement
// worklist.
class Coloring {
 public:
  // The unit coloring [V] on n vertices.
  static Coloring Unit(VertexId n);

  // Groups vertices by label; cells ordered by ascending label value, so
  // the cell order is invariant under vertex relabeling.
  static Coloring FromLabels(std::span<const uint32_t> labels);

  VertexId NumVertices() const { return static_cast<VertexId>(order_.size()); }
  VertexId NumCells() const { return num_cells_; }
  bool IsDiscrete() const { return num_cells_ == NumVertices(); }

  // pi(v): start index of v's cell == sum of sizes of preceding cells.
  VertexId ColorOf(VertexId v) const { return cell_start_of_[v]; }

  VertexId CellSizeAt(VertexId start) const { return cell_len_[start]; }

  std::span<const VertexId> CellVerticesAt(VertexId start) const {
    return {order_.data() + start, order_.data() + start + cell_len_[start]};
  }

  // All cell start indices in partition order.
  std::vector<VertexId> CellStarts() const;

  VertexId VertexAtPosition(VertexId pos) const { return order_[pos]; }
  VertexId PositionOf(VertexId v) const { return pos_[v]; }

  // Splits the cell at `start` into fragments ordered by ascending
  // key[vertex]. Returns the fragment start indices (in order); a
  // single-fragment result means no split happened and the vector has one
  // entry (`start`). Costs O(cell size * log).
  std::vector<VertexId> SplitCellByKeys(VertexId start,
                                        std::span<const uint64_t> keys);

  // Sparse split used by the refiner: `sorted_counted` lists (key, vertex)
  // pairs — a subset of the cell's vertices, sorted by ascending key with
  // every key > 0 — which are moved to the tail of the segment and grouped
  // by key; the unlisted vertices (conceptual key 0) keep the fragment at
  // `start`. Returns all fragment starts in order. Costs
  // O(|sorted_counted|), independent of the cell size, which is what keeps
  // refinement near-linear when small splitters touch huge cells.
  std::vector<VertexId> SplitCellByTailGroups(
      VertexId start,
      std::span<const std::pair<uint64_t, VertexId>> sorted_counted);

  // Individualizes v (paper §4): v becomes a singleton cell placed at the
  // front of its former cell. No-op if v is already a singleton. Returns
  // the start index of the remainder cell (== ColorOf(v) + 1), or v's own
  // cell start if there is no remainder.
  VertexId Individualize(VertexId v);

  // When discrete, the coloring corresponds to the single permutation
  // v -> position (paper §2).
  Permutation ToPermutation() const;

  // pi(v) for every v, as a plain array (Algorithm 1 line 2).
  std::vector<uint32_t> ColorOffsets() const;

  friend bool operator==(const Coloring& lhs, const Coloring& rhs) {
    return lhs.order_ == rhs.order_ && lhs.cell_len_ == rhs.cell_len_;
  }

  // DVICL_DCHECK verifier (no-op unless built with -DDVICL_DCHECK=ON):
  // aborts with a diagnostic unless the representation invariants hold —
  // order_/pos_ are inverse, cells tile 0..n-1 contiguously, every vertex's
  // cached cell start points at the cell that contains it, and num_cells_
  // matches. Called by refine::VerifyEquitable after every refinement and
  // at the end of Individualize.
  void CheckConsistency() const;

 private:
  Coloring() = default;

  std::vector<VertexId> order_;          // vertices, cells contiguous
  std::vector<VertexId> pos_;            // inverse of order_
  std::vector<VertexId> cell_start_of_;  // per vertex: its cell's start
  std::vector<VertexId> cell_len_;       // valid at cell start indices
  VertexId num_cells_ = 0;
};

}  // namespace dvicl

#endif  // DVICL_REFINE_COLORING_H_
