#ifndef DVICL_REFINE_COLORING_H_
#define DVICL_REFINE_COLORING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "graph/graph.h"
#include "perm/permutation.h"

namespace dvicl {

// An ordered partition pi = [V1 | V2 | ... | Vk] of the vertex set
// (paper §2 "Coloring"). Cells are contiguous segments of a vertex array,
// so the color of a vertex — defined in the paper as the sum of the sizes
// of the preceding cells — is simply the start index of its segment.
//
// The representation supports the two mutations canonical-labeling needs:
// splitting a cell into ordered fragments (refinement) and individualizing
// a vertex (paper §4). Both keep all other cells' positions intact, which
// is what makes cell start indices stable identifiers for the refinement
// worklist.
//
// Storage: four structure-of-arrays vectors, each of fixed size n after
// construction (splits and individualization rearrange but never resize).
// They may be carved from an Arena (DESIGN.md §13): construct via the
// arena-taking factories or the (other, arena) clone constructor, and keep
// the coloring inside the ArenaFrame that covers its allocation. The plain
// copy constructor ALWAYS produces a heap-backed copy, so accidentally
// copying a coloring can never leak arena pointers across a frame or
// thread boundary.
class Coloring {
 public:
  // The unit coloring [V] on n vertices.
  static Coloring Unit(VertexId n, Arena* arena = nullptr);

  // Groups vertices by label; cells ordered by ascending label value, so
  // the cell order is invariant under vertex relabeling.
  static Coloring FromLabels(std::span<const uint32_t> labels,
                             Arena* arena = nullptr);

  Coloring(const Coloring& other) = default;  // heap-backed copy
  // Clone into `arena` (heap-backed when arena is null).
  Coloring(const Coloring& other, Arena* arena)
      : order_(other.order_, arena),
        pos_(other.pos_, arena),
        cell_start_of_(other.cell_start_of_, arena),
        cell_len_(other.cell_len_, arena),
        num_cells_(other.num_cells_) {}
  Coloring(Coloring&&) noexcept = default;
  Coloring& operator=(const Coloring&) = default;
  Coloring& operator=(Coloring&&) noexcept = default;

  // The arena this coloring's storage lives in (null = heap). Refinement
  // runs use it for their scratch, so an arena-backed coloring implies an
  // arena-backed refinement.
  Arena* arena() const { return order_.arena(); }

  VertexId NumVertices() const { return static_cast<VertexId>(order_.size()); }
  VertexId NumCells() const { return num_cells_; }
  bool IsDiscrete() const { return num_cells_ == NumVertices(); }

  // pi(v): start index of v's cell == sum of sizes of preceding cells.
  VertexId ColorOf(VertexId v) const { return cell_start_of_[v]; }

  VertexId CellSizeAt(VertexId start) const { return cell_len_[start]; }

  std::span<const VertexId> CellVerticesAt(VertexId start) const {
    return {order_.data() + start, order_.data() + start + cell_len_[start]};
  }

  // Zero-allocation forward range over the cell start indices in partition
  // order: `for (VertexId start : pi.Cells())`. This is the view hot loops
  // (refiner worklist seeding, target-cell selection, node invariants) use
  // instead of materializing CellStarts(); it walks cell_len_ in place and
  // is invalidated by any mutation of the coloring.
  class CellStartIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = VertexId;
    using difference_type = std::ptrdiff_t;
    using pointer = const VertexId*;
    using reference = VertexId;

    CellStartIterator(const VertexId* len, VertexId start)
        : len_(len), start_(start) {}
    VertexId operator*() const { return start_; }
    CellStartIterator& operator++() {
      start_ += len_[start_];
      return *this;
    }
    CellStartIterator operator++(int) {
      CellStartIterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const CellStartIterator& a,
                           const CellStartIterator& b) {
      return a.start_ == b.start_;
    }
    friend bool operator!=(const CellStartIterator& a,
                           const CellStartIterator& b) {
      return a.start_ != b.start_;
    }

   private:
    const VertexId* len_;
    VertexId start_;
  };

  class CellStartRange {
   public:
    CellStartRange(const VertexId* len, VertexId n) : len_(len), n_(n) {}
    CellStartIterator begin() const { return {len_, 0}; }
    CellStartIterator end() const { return {len_, n_}; }

   private:
    const VertexId* len_;
    VertexId n_;
  };

  CellStartRange Cells() const { return {cell_len_.data(), NumVertices()}; }

  // All cell start indices in partition order, as a fresh vector. Compat
  // API for cold callers (tests, SSM backtracking, benches); hot loops use
  // Cells() instead.
  std::vector<VertexId> CellStarts() const;

  VertexId VertexAtPosition(VertexId pos) const { return order_[pos]; }
  VertexId PositionOf(VertexId v) const { return pos_[v]; }

  // Reusable fragment-list buffer for the *Into split variants: fragment
  // counts are almost always tiny, so the inline capacity makes the common
  // case allocation-free; a spill goes to the buffer's arena or heap.
  using FragmentBuffer = SmallVec<VertexId, 8>;

  // Splits the cell at `start` into fragments ordered by ascending
  // key[vertex], appending the fragment start indices (in order) to
  // *fragments (cleared first); a single-entry result means no split
  // happened. Costs O(cell size * log).
  void SplitCellByKeysInto(VertexId start, std::span<const uint64_t> keys,
                           FragmentBuffer* fragments);

  // Allocating wrapper (compat API for tests and cold callers).
  std::vector<VertexId> SplitCellByKeys(VertexId start,
                                        std::span<const uint64_t> keys);

  // Sparse split used by the refiner: `sorted_counted` lists (key, vertex)
  // pairs — a subset of the cell's vertices, sorted by ascending key with
  // every key > 0 — which are moved to the tail of the segment and grouped
  // by key; the unlisted vertices (conceptual key 0) keep the fragment at
  // `start`. Appends all fragment starts in order to *fragments (cleared
  // first). Costs O(|sorted_counted|), independent of the cell size, which
  // is what keeps refinement near-linear when small splitters touch huge
  // cells.
  void SplitCellByTailGroupsInto(
      VertexId start,
      std::span<const std::pair<uint64_t, VertexId>> sorted_counted,
      FragmentBuffer* fragments);

  // Allocating wrapper (compat API for tests and cold callers).
  std::vector<VertexId> SplitCellByTailGroups(
      VertexId start,
      std::span<const std::pair<uint64_t, VertexId>> sorted_counted);

  // Individualizes v (paper §4): v becomes a singleton cell placed at the
  // front of its former cell. No-op if v is already a singleton. Returns
  // the start index of the remainder cell (== ColorOf(v) + 1), or v's own
  // cell start if there is no remainder.
  VertexId Individualize(VertexId v);

  // When discrete, the coloring corresponds to the single permutation
  // v -> position (paper §2).
  Permutation ToPermutation() const;

  // pi(v) for every v (Algorithm 1 line 2): a zero-allocation view of the
  // per-vertex cell-start array, invalidated by any mutation. Callers that
  // need the offsets to outlive the coloring copy from this view.
  std::span<const uint32_t> ColorOffsetsView() const {
    return {cell_start_of_.data(), cell_start_of_.size()};
  }

  // Allocating wrapper (compat API).
  std::vector<uint32_t> ColorOffsets() const;

  friend bool operator==(const Coloring& lhs, const Coloring& rhs) {
    return lhs.order_ == rhs.order_ && lhs.cell_len_ == rhs.cell_len_;
  }

  // DVICL_DCHECK verifier (no-op unless built with -DDVICL_DCHECK=ON):
  // aborts with a diagnostic unless the representation invariants hold —
  // order_/pos_ are inverse, cells tile 0..n-1 contiguously, every vertex's
  // cached cell start points at the cell that contains it, and num_cells_
  // matches. Called by refine::VerifyEquitable after every refinement and
  // at the end of Individualize.
  void CheckConsistency() const;

 private:
  Coloring() = default;
  explicit Coloring(Arena* arena)
      : order_(arena), pos_(arena), cell_start_of_(arena), cell_len_(arena) {}

  SmallVec<VertexId> order_;          // vertices, cells contiguous
  SmallVec<VertexId> pos_;            // inverse of order_
  SmallVec<VertexId> cell_start_of_;  // per vertex: its cell's start
  SmallVec<VertexId> cell_len_;       // valid at cell start indices
  VertexId num_cells_ = 0;
};

}  // namespace dvicl

#endif  // DVICL_REFINE_COLORING_H_
