#include "refine/refiner.h"

#include <algorithm>
#include <vector>

#include "common/arena.h"
#include "common/check.h"

namespace dvicl {

namespace {

// Refinement work counters (see refiner.h): thread-local so the hot loop
// never synchronizes; each thread observes exactly the work it performed.
thread_local uint64_t tl_splitters = 0;
thread_local uint64_t tl_cell_splits = 0;

// Worklist refinement state shared by the two entry points. The scratch
// arrays are all fixed-size (bounded by n) and live exactly as long as one
// refinement, so they are carved from the coloring's arena when it has one
// (under a frame that rewinds when the run ends) and from the counted heap
// otherwise — the arena-off leg deliberately keeps per-call heap
// allocations so ASan's per-allocation poisoning still covers the buffers
// and the allocation-regression test has a baseline to compare against.
class RefinementRun {
 public:
  RefinementRun(const Graph& graph, Coloring* pi)
      : graph_(graph),
        pi_(pi),
        frame_(pi->arena()),
        count_(pi->arena()),
        in_queue_(pi->arena()),
        queue_(pi->arena()),
        splitter_(pi->arena()),
        touched_(pi->arena()),
        grouped_(pi->arena()),
        counted_pairs_(pi->arena()),
        fragments_(pi->arena()) {
    const VertexId n = graph.NumVertices();
    count_.resize(n);     // zero-filled
    in_queue_.resize(n);  // zero-filled
    // Fixed-capacity ring: at most one live entry per distinct cell start
    // (guarded by in_queue_), so n + 1 slots can never overflow.
    queue_.resize(static_cast<size_t>(n) + 1);
    splitter_.reserve(n);
    touched_.reserve(n);
  }

  void Enqueue(VertexId cell_start) {
    if (!in_queue_[cell_start]) {
      in_queue_[cell_start] = 1;
      queue_[tail_] = cell_start;
      tail_ = tail_ + 1 == queue_.size() ? 0 : tail_ + 1;
    }
  }

  void Run() {
    while (head_ != tail_ && !pi_->IsDiscrete()) {
      const VertexId splitter_start = queue_[head_];
      head_ = head_ + 1 == queue_.size() ? 0 : head_ + 1;
      in_queue_[splitter_start] = 0;
      UseSplitter(splitter_start);
    }
  }

 private:
  void UseSplitter(VertexId splitter_start) {
    ++tl_splitters;
    // Snapshot the splitter: splitting may rearrange the very cell we are
    // iterating (a cell can split on counts into itself).
    auto cell = pi_->CellVerticesAt(splitter_start);
    splitter_.assign(cell.begin(), cell.end());

    // Count neighbors in the splitter.
    touched_.clear();
    for (VertexId w : splitter_) {
      for (VertexId u : graph_.Neighbors(w)) {
        if (count_[u]++ == 0) touched_.push_back(u);
      }
    }

    // Group the counted vertices by their cell, ordered by (cell start,
    // count): all data in the key is isomorphism-invariant, so the
    // refinement trace — and the final cell order — is invariant. Vertices
    // with equal (cell, count) stay in one fragment, so their tie order is
    // irrelevant.
    grouped_.clear();
    grouped_.reserve(touched_.size());
    for (VertexId u : touched_) {
      grouped_.push_back(Counted{pi_->ColorOf(u), count_[u], u});
    }
    std::sort(grouped_.begin(), grouped_.end(),
              [](const Counted& a, const Counted& b) {
                if (a.cell != b.cell) return a.cell < b.cell;
                return a.count < b.count;
              });

    for (size_t lo = 0; lo < grouped_.size();) {
      size_t hi = lo;
      while (hi < grouped_.size() && grouped_[hi].cell == grouped_[lo].cell) {
        ++hi;
      }
      const VertexId cs = grouped_[lo].cell;
      const VertexId len = pi_->CellSizeAt(cs);
      const size_t k = hi - lo;
      // No split possible: the whole cell counted with one value, or a
      // singleton cell.
      if (len == 1 || (k == len && grouped_[lo].count ==
                                       grouped_[hi - 1].count)) {
        lo = hi;
        continue;
      }

      counted_pairs_.clear();
      counted_pairs_.reserve(k);
      for (size_t i = lo; i < hi; ++i) {
        counted_pairs_.emplace_back(grouped_[i].count, grouped_[i].vertex);
      }
      const bool was_queued = in_queue_[cs];
      pi_->SplitCellByTailGroupsInto(
          cs,
          std::span<const std::pair<uint64_t, VertexId>>(
              counted_pairs_.data(), counted_pairs_.size()),
          &fragments_);
      lo = hi;
      if (fragments_.size() <= 1) continue;
      tl_cell_splits += fragments_.size() - 1;

      if (was_queued) {
        // The queue entry for `cs` now denotes the first fragment; enqueue
        // the remaining fragments so the full old splitter is still covered.
        for (size_t i = 1; i < fragments_.size(); ++i) Enqueue(fragments_[i]);
      } else {
        // Hopcroft's rule: all fragments but one largest suffice.
        size_t largest = 0;
        for (size_t i = 1; i < fragments_.size(); ++i) {
          if (pi_->CellSizeAt(fragments_[i]) >
              pi_->CellSizeAt(fragments_[largest])) {
            largest = i;
          }
        }
        for (size_t i = 0; i < fragments_.size(); ++i) {
          if (i != largest) Enqueue(fragments_[i]);
        }
      }
    }

    for (VertexId u : touched_) count_[u] = 0;
  }

  struct Counted {
    VertexId cell;
    uint64_t count;
    VertexId vertex;
  };

  const Graph& graph_;
  Coloring* pi_;
  // Declared before the scratch vectors: members destroy in reverse order,
  // so the frame rewinds the arena only after every scratch buffer is gone.
  ArenaFrame frame_;
  SmallVec<uint64_t> count_;
  SmallVec<uint8_t> in_queue_;
  SmallVec<VertexId> queue_;  // ring storage; head_/tail_ below
  size_t head_ = 0;
  size_t tail_ = 0;
  SmallVec<VertexId> splitter_;
  SmallVec<VertexId> touched_;
  SmallVec<Counted> grouped_;
  SmallVec<std::pair<uint64_t, VertexId>> counted_pairs_;
  Coloring::FragmentBuffer fragments_;
};

}  // namespace

void RefineToEquitable(const Graph& graph, Coloring* pi) {
  RefinementRun run(graph, pi);
  for (VertexId start : pi->Cells()) run.Enqueue(start);
  run.Run();
  VerifyEquitable(graph, *pi);
}

void RefineFrom(const Graph& graph, Coloring* pi,
                std::span<const VertexId> seed_cell_starts) {
  RefinementRun run(graph, pi);
  for (VertexId start : seed_cell_starts) run.Enqueue(start);
  run.Run();
  VerifyEquitable(graph, *pi);
}

void VerifyEquitable(const Graph& graph, const Coloring& pi) {
#ifdef DVICL_DCHECK_ENABLED
  pi.CheckConsistency();
  // Equitable <=> within every cell, all members see identical multisets of
  // neighbor colors (the per-cell-pair counts of paper §2, read off as one
  // sorted profile per vertex). O(m log deg) total.
  std::vector<VertexId> rep_profile;
  std::vector<VertexId> member_profile;
  for (VertexId cs : pi.Cells()) {
    const auto cell = pi.CellVerticesAt(cs);
    if (cell.size() == 1) continue;
    rep_profile.clear();
    for (VertexId u : graph.Neighbors(cell.front())) {
      rep_profile.push_back(pi.ColorOf(u));
    }
    std::sort(rep_profile.begin(), rep_profile.end());
    for (size_t i = 1; i < cell.size(); ++i) {
      member_profile.clear();
      for (VertexId u : graph.Neighbors(cell[i])) {
        member_profile.push_back(pi.ColorOf(u));
      }
      std::sort(member_profile.begin(), member_profile.end());
      DVICL_DCHECK(member_profile == rep_profile)
          << "coloring is not equitable: cell " << cs << " members "
          << cell.front() << " and " << cell[i]
          << " see different neighbor-color profiles";
    }
  }
#else
  (void)graph;
  (void)pi;
#endif
}

uint64_t ThreadRefineSplitters() { return tl_splitters; }

uint64_t ThreadRefineCellSplits() { return tl_cell_splits; }

uint64_t EquitableSignatureHash(const Graph& graph, const Coloring& initial,
                                Arena* scratch) {
  // The refined copy and the rank/row scratch live only for this call, so
  // they are carved from `scratch` (under a frame) when the caller has an
  // arena — the cert-cache probe path passes the leaf arena here.
  ArenaFrame frame(scratch);
  Coloring pi(initial, scratch);
  RefineToEquitable(graph, &pi);

  auto mix = [](uint64_t h, uint64_t value) {
    h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  uint64_t h = 0xcbf29ce484222325ull;
  h = mix(h, graph.NumVertices());
  h = mix(h, graph.NumEdges());
  h = mix(h, pi.NumCells());
  // Cell-rank of every vertex, for the quotient row below.
  SmallVec<uint32_t> rank_of(scratch);
  rank_of.resize(graph.NumVertices());
  {
    uint32_t rank = 0;
    for (VertexId cs : pi.Cells()) {
      for (VertexId v : pi.CellVerticesAt(cs)) rank_of[v] = rank;
      ++rank;
    }
  }
  SmallVec<uint64_t> row(scratch);
  row.resize(pi.NumCells());
  for (VertexId cs : pi.Cells()) {
    h = mix(h, cs);
    h = mix(h, pi.CellSizeAt(cs));
    // Equitable: any representative of the cell has the same per-cell
    // neighbor counts, so one vertex determines the whole quotient row.
    std::fill(row.begin(), row.end(), 0);
    const VertexId rep = pi.CellVerticesAt(cs).front();
    for (VertexId u : graph.Neighbors(rep)) ++row[rank_of[u]];
    for (uint64_t count : row) h = mix(h, count);
  }
  return h;
}

bool IsEquitable(const Graph& graph, const Coloring& pi) {
  const std::vector<VertexId> starts = pi.CellStarts();
  std::vector<uint64_t> count(graph.NumVertices(), 0);
  for (VertexId splitter : starts) {
    for (VertexId w : pi.CellVerticesAt(splitter)) {
      for (VertexId u : graph.Neighbors(w)) ++count[u];
    }
    for (VertexId cs : starts) {
      auto cell = pi.CellVerticesAt(cs);
      for (VertexId v : cell) {
        if (count[v] != count[cell.front()]) return false;
      }
    }
    std::fill(count.begin(), count.end(), 0);
  }
  return true;
}

}  // namespace dvicl
