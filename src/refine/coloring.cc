#include "refine/coloring.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/check.h"

namespace dvicl {

void Coloring::CheckConsistency() const {
#ifdef DVICL_DCHECK_ENABLED
  const VertexId n = NumVertices();
  DVICL_DCHECK_EQ(pos_.size(), order_.size());
  DVICL_DCHECK_EQ(cell_start_of_.size(), order_.size());
  DVICL_DCHECK_EQ(cell_len_.size(), order_.size());
  for (VertexId p = 0; p < n; ++p) {
    const VertexId v = order_[p];
    DVICL_DCHECK_LT(v, n);
    DVICL_DCHECK_EQ(pos_[v], p) << "order_/pos_ are not inverse at " << p;
  }
  // Cells tile 0..n-1 contiguously; every member caches its cell start.
  VertexId start = 0;
  VertexId cells = 0;
  while (start < n) {
    const VertexId len = cell_len_[start];
    DVICL_DCHECK_GT(len, 0u) << "zero-length cell at " << start;
    DVICL_DCHECK_LE(start + len, n) << "cell at " << start << " overflows";
    for (VertexId p = start; p < start + len; ++p) {
      DVICL_DCHECK_EQ(cell_start_of_[order_[p]], start)
          << "vertex " << order_[p] << " caches the wrong cell start";
    }
    start += len;
    ++cells;
  }
  DVICL_DCHECK_EQ(cells, num_cells_);
#endif
}

Coloring Coloring::Unit(VertexId n, Arena* arena) {
  Coloring pi(arena);
  pi.order_.resize(n);
  std::iota(pi.order_.begin(), pi.order_.end(), 0);
  pi.pos_ = pi.order_;
  pi.cell_start_of_.assign(n, 0);
  pi.cell_len_.assign(n, 0);
  if (n > 0) {
    pi.cell_len_[0] = n;
    pi.num_cells_ = 1;
  }
  return pi;
}

Coloring Coloring::FromLabels(std::span<const uint32_t> labels, Arena* arena) {
  const VertexId n = static_cast<VertexId>(labels.size());
  Coloring pi = Unit(n, arena);
  if (n == 0) return pi;
  // The key array and fragment list are split-local scratch; when the
  // coloring is arena-backed they land in the same frame as the coloring
  // itself and are reclaimed with it.
  SmallVec<uint64_t> keys(arena);
  keys.reserve(n);
  for (const uint32_t label : labels) keys.push_back(label);
  FragmentBuffer fragments(arena);
  pi.SplitCellByKeysInto(0, std::span<const uint64_t>(keys.data(), keys.size()),
                         &fragments);
  return pi;
}

std::vector<VertexId> Coloring::CellStarts() const {
  std::vector<VertexId> starts;
  starts.reserve(num_cells_);
  for (VertexId start : Cells()) starts.push_back(start);
  return starts;
}

void Coloring::SplitCellByKeysInto(VertexId start,
                                   std::span<const uint64_t> keys,
                                   FragmentBuffer* fragments) {
  fragments->clear();
  const VertexId len = cell_len_[start];
  assert(len > 0);

  // Gather (key, vertex) pairs and sort by key; ties keep any order since
  // vertices with equal keys stay in one cell.
  SmallVec<std::pair<uint64_t, VertexId>, 16> entries(arena());
  entries.reserve(len);
  for (VertexId i = 0; i < len; ++i) {
    const VertexId v = order_[start + i];
    entries.emplace_back(keys[v], v);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  if (entries.front().first == entries.back().first) {
    fragments->push_back(start);  // single fragment, no split
    return;
  }

  VertexId cursor = start;
  VertexId fragment_start = start;
  uint64_t fragment_key = entries.front().first;
  fragments->push_back(start);
  for (const auto& [key, v] : entries) {
    if (key != fragment_key) {
      cell_len_[fragment_start] = cursor - fragment_start;
      fragment_start = cursor;
      fragment_key = key;
      fragments->push_back(fragment_start);
      ++num_cells_;
    }
    order_[cursor] = v;
    pos_[v] = cursor;
    cell_start_of_[v] = fragment_start;
    ++cursor;
  }
  cell_len_[fragment_start] = cursor - fragment_start;
}

std::vector<VertexId> Coloring::SplitCellByKeys(
    VertexId start, std::span<const uint64_t> keys) {
  FragmentBuffer fragments;
  SplitCellByKeysInto(start, keys, &fragments);
  return std::vector<VertexId>(fragments.begin(), fragments.end());
}

void Coloring::SplitCellByTailGroupsInto(
    VertexId start,
    std::span<const std::pair<uint64_t, VertexId>> sorted_counted,
    FragmentBuffer* fragments) {
  fragments->clear();
  const VertexId len = cell_len_[start];
  const VertexId k = static_cast<VertexId>(sorted_counted.size());
  assert(k > 0 && k <= len);

  // Degenerate: everything counted with a single key — no split.
  if (k == len && sorted_counted.front().first == sorted_counted.back().first) {
    fragments->push_back(start);
    return;
  }

  // Move the counted vertices to the tail, preserving ascending key order:
  // place from the back of both the list and the segment. Each swap only
  // touches two vertices, so the cost is O(k).
  VertexId write = start + len;
  for (size_t i = sorted_counted.size(); i-- > 0;) {
    --write;
    const VertexId v = sorted_counted[i].second;
    const VertexId v_pos = pos_[v];
    if (v_pos != write) {
      const VertexId other = order_[write];
      order_[write] = v;
      order_[v_pos] = other;
      pos_[v] = write;
      pos_[other] = v_pos;
    }
  }

  const VertexId tail_start = start + len - k;
  if (k < len) {
    // The uncounted remainder keeps the original start.
    cell_len_[start] = len - k;
    fragments->push_back(start);
  }
  // Fragment the tail by key runs.
  VertexId fragment_start = tail_start;
  for (size_t i = 0; i < sorted_counted.size(); ++i) {
    if (i > 0 && sorted_counted[i].first != sorted_counted[i - 1].first) {
      cell_len_[fragment_start] =
          tail_start + static_cast<VertexId>(i) - fragment_start;
      fragments->push_back(fragment_start);
      fragment_start = tail_start + static_cast<VertexId>(i);
    }
  }
  cell_len_[fragment_start] = start + len - fragment_start;
  fragments->push_back(fragment_start);
  // Assign each tail vertex its fragment start (single walk).
  {
    VertexId fs = tail_start;
    for (VertexId i = tail_start; i < start + len; ++i) {
      if (i == fs + cell_len_[fs]) fs = i;
      cell_start_of_[order_[i]] = fs;
    }
  }
  num_cells_ += static_cast<VertexId>(fragments->size()) - 1;
}

std::vector<VertexId> Coloring::SplitCellByTailGroups(
    VertexId start,
    std::span<const std::pair<uint64_t, VertexId>> sorted_counted) {
  FragmentBuffer fragments;
  SplitCellByTailGroupsInto(start, sorted_counted, &fragments);
  return std::vector<VertexId>(fragments.begin(), fragments.end());
}

VertexId Coloring::Individualize(VertexId v) {
  const VertexId start = cell_start_of_[v];
  const VertexId len = cell_len_[start];
  if (len == 1) return start;

  // Swap v to the front of its cell.
  const VertexId front_vertex = order_[start];
  const VertexId v_pos = pos_[v];
  order_[start] = v;
  order_[v_pos] = front_vertex;
  pos_[v] = start;
  pos_[front_vertex] = v_pos;

  // Carve off the singleton.
  cell_len_[start] = 1;
  const VertexId rest = start + 1;
  cell_len_[rest] = len - 1;
  for (VertexId i = rest; i < start + len; ++i) {
    cell_start_of_[order_[i]] = rest;
  }
  ++num_cells_;
  CheckConsistency();
  return rest;
}

Permutation Coloring::ToPermutation() const {
  assert(IsDiscrete());
  std::vector<VertexId> image(NumVertices());
  for (VertexId v = 0; v < NumVertices(); ++v) image[v] = pos_[v];
  return Permutation(std::move(image));
}

std::vector<uint32_t> Coloring::ColorOffsets() const {
  const std::span<const uint32_t> view = ColorOffsetsView();
  return std::vector<uint32_t>(view.begin(), view.end());
}

}  // namespace dvicl
