#ifndef DVICL_DATASETS_GENERATORS_H_
#define DVICL_DATASETS_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace dvicl {

// Deterministic graph generators for the evaluation suites (DESIGN.md §4).
// Everything is seeded and reproducible.

// ---- Elementary families -------------------------------------------------

Graph CycleGraph(VertexId n);
Graph PathGraph(VertexId n);
Graph CompleteGraph(VertexId n);
Graph CompleteBipartiteGraph(VertexId a, VertexId b);
Graph StarGraph(VertexId leaves);

// Wrapped 3-dimensional grid (torus) of side s: the bliss family
// grid-w-3-s. 6-regular, s^3 vertices.
Graph Torus3dGraph(VertexId side);

// ---- Random models ---------------------------------------------------------

Graph ErdosRenyiGraph(VertexId n, double p, uint64_t seed);

// Barabasi-Albert preferential attachment: each new vertex attaches
// `edges_per_vertex` edges to existing vertices with degree-proportional
// probability. Social-network degree distributions.
Graph PreferentialAttachmentGraph(VertexId n, uint32_t edges_per_vertex,
                                  uint64_t seed);

// Uniform random labeled tree (random Pruefer sequence decoded): the
// classic canonical-labeling testbed, and the family that exercises deep
// DivideI recursion chains in the AutoTree.
Graph RandomTreeGraph(VertexId n, uint64_t seed);

// Random d-regular graph by the configuration model (pairing of degree
// stubs, resampled until simple). Requires n*d even and d < n.
Graph RandomRegularGraph(VertexId n, uint32_t d, uint64_t seed);

// Kleinberg-Kumar copying model: each new vertex copies a random prototype's
// links with probability copy_prob per link (else links uniformly). Web-like
// graphs rich in structurally equivalent vertices.
Graph CopyingModelGraph(VertexId n, uint32_t out_degree, double copy_prob,
                        uint64_t seed);

// ---- Symmetry planting (what makes synthetic graphs behave like Table 1's
// real graphs: most symmetry lives in twins and small hanging structures) --

// Appends round(twin_fraction * n) new vertices, each a structural twin
// (identical neighbor set) of a random existing vertex.
Graph WithTwins(const Graph& graph, double twin_fraction, uint64_t seed);

// Like WithTwins, but whole twin CLASSES with geometrically distributed
// sizes (mean ~2, capped at max_class_size) anchored at random vertices.
// Real networks show such heavy-tailed equivalence classes (users who all
// follow exactly one hub), which is where the paper's astronomic Table 6
// seed-set counts come from.
Graph WithTwinClasses(const Graph& graph, double class_fraction,
                      uint32_t max_class_size, uint64_t seed);

// Attaches round(fraction * n) pendant paths of length 1..max_depth to
// random vertices (degree-1 chains, the "hanging trees" of real networks).
Graph WithPendantPaths(const Graph& graph, double fraction,
                       uint32_t max_depth, uint64_t seed);

// Attaches `count` wheel gadgets: a new ring of ring_size vertices, each
// also joined to a random anchor vertex. The ring is vertex-transitive and
// not a clique, so after the anchor is pinned by refinement the ring
// survives as a small NON-SINGLETON AutoTree leaf that CombineCL hands to
// the IR backend — the structure behind the paper's Table 3 web graphs
// (BerkStan/NotreDame keep a few small IR leaves).
Graph WithWheelGadgets(const Graph& graph, uint32_t count,
                       uint32_t ring_size, uint64_t seed);

// ---- Hard benchmark families (bliss collection, DESIGN.md §4) -------------

// Hadamard graph of a Sylvester matrix H_order (order must be a power of
// two): 4*order vertices, degree order+1. The bliss family had-n.
Graph HadamardGraph(uint32_t order);

// Cai-Furer-Immerman construction over the 3-regular circulant base
// C_base_n(1, base_n/2) (base_n even, >= 6). `twisted` flips one edge
// gadget: the twisted and untwisted graphs are non-isomorphic but
// 1-WL-equivalent. The bliss family cfi-n.
Graph CfiGraph(uint32_t base_n, bool twisted);

// Miyazaki-style graph: Furer gadgets chained along a 3-regular Moebius
// ladder of length `rungs` (approximation of the bliss family mz-aug-n;
// see DESIGN.md §4).
Graph MiyazakiLikeGraph(uint32_t rungs);

// Point-line incidence graph of the projective plane PG(2, q), q prime:
// 2*(q^2+q+1) vertices, (q+1)-regular, vertex-transitive and highly
// symmetric. The bliss family pg2-q.
Graph ProjectivePlaneGraph(uint32_t q);

// Point-line incidence graph of the affine plane AG(2, q), q prime:
// q^2 + (q^2+q) vertices. The bliss family ag2-q.
Graph AffinePlaneGraph(uint32_t q);

// Layered circuit-like graph (gates with fan-in 2 over shared inputs),
// standing in for the SAT-derived bliss families (fpga / difp / s3) whose
// CNF sources are not redistributable.
Graph CircuitLikeGraph(uint32_t inputs, uint32_t gates, uint64_t seed);

// Disjoint union of `copies` Miyazaki-like graphs (vertex ids offset per
// copy): every component becomes its own AutoTree sibling subtree, which
// makes this the canonical workload for the parallel build (independent
// equal-cost tasks) AND for the canonical-form cache (all copies lower to
// the identical local colored subproblem, so every leaf after the first
// copy's is a verified cache hit).
Graph GadgetForestGraph(uint32_t copies, uint32_t rungs);

}  // namespace dvicl

#endif  // DVICL_DATASETS_GENERATORS_H_
