#include "datasets/real_suite.h"

#include <algorithm>

#include "datasets/generators.h"

namespace dvicl {

namespace {

VertexId Scaled(double scale, VertexId base) {
  return std::max<VertexId>(64, static_cast<VertexId>(base * scale));
}

Graph SocialLike(double scale, VertexId base, uint32_t m, uint64_t seed) {
  Graph g = PreferentialAttachmentGraph(Scaled(scale, base), m, seed);
  g = WithTwinClasses(g, 0.04, 24, seed + 1);
  g = WithPendantPaths(g, 0.05, 3, seed + 2);
  return g;
}

Graph WebLike(double scale, VertexId base, uint32_t d, uint64_t seed) {
  Graph g = CopyingModelGraph(Scaled(scale, base), d, 0.6, seed);
  g = WithTwinClasses(g, 0.06, 48, seed + 1);
  g = WithPendantPaths(g, 0.08, 4, seed + 2);
  // Web graphs in the paper's Table 3 keep a handful of small IR leaves;
  // vertex-transitive ring gadgets reproduce that (see WithWheelGadgets).
  g = WithWheelGadgets(g, 10 + static_cast<uint32_t>(seed % 7), 8, seed + 3);
  return g;
}

Graph SparseLike(double scale, VertexId base, uint32_t m, uint64_t seed) {
  Graph g = PreferentialAttachmentGraph(Scaled(scale, base), m, seed);
  g = WithTwins(g, 0.12, seed + 1);
  g = WithPendantPaths(g, 0.15, 5, seed + 2);
  return g;
}

}  // namespace

std::vector<NamedGraph> RealSuite(double scale) {
  std::vector<NamedGraph> suite;
  // Category and base size choices follow Table 1's relative ordering
  // (Amazon ~400k real -> 8k at scale 1; Orkut/LiveJournal largest).
  suite.push_back({"Amazon", "co-purchase", SparseLike(scale, 8000, 3, 101)});
  suite.push_back({"BerkStan", "web", WebLike(scale, 10000, 5, 102)});
  suite.push_back({"Epinions", "social", SocialLike(scale, 2500, 5, 103)});
  suite.push_back({"Gnutella", "p2p", SparseLike(scale, 2000, 2, 104)});
  suite.push_back({"Google", "web", WebLike(scale, 12000, 5, 105)});
  suite.push_back(
      {"LiveJournal", "social", SocialLike(scale, 24000, 8, 106)});
  suite.push_back({"NotreDame", "web", WebLike(scale, 6000, 3, 107)});
  suite.push_back({"Pokec", "social", SocialLike(scale, 16000, 12, 108)});
  suite.push_back(
      {"Slashdot0811", "social", SocialLike(scale, 2600, 6, 109)});
  suite.push_back(
      {"Slashdot0902", "social", SocialLike(scale, 2700, 6, 110)});
  suite.push_back({"Stanford", "web", WebLike(scale, 6000, 7, 111)});
  suite.push_back(
      {"WikiTalk", "communication", SparseLike(scale, 20000, 2, 112)});
  suite.push_back({"wikivote", "social", SocialLike(scale, 1200, 12, 113)});
  suite.push_back({"Youtube", "social", SparseLike(scale, 14000, 2, 114)});
  suite.push_back({"Orkut", "social", SocialLike(scale, 28000, 16, 115)});
  suite.push_back({"BuzzNet", "social", SocialLike(scale, 2200, 24, 116)});
  suite.push_back({"Delicious", "social", SparseLike(scale, 7000, 2, 117)});
  suite.push_back({"Digg", "social", SocialLike(scale, 8000, 7, 118)});
  suite.push_back({"Flixster", "social", SparseLike(scale, 18000, 3, 119)});
  suite.push_back({"Foursquare", "social", SocialLike(scale, 7500, 5, 120)});
  suite.push_back(
      {"Friendster", "social", SparseLike(scale, 26000, 2, 121)});
  suite.push_back({"Lastfm", "music site", SparseLike(scale, 10000, 3, 122)});
  return suite;
}

}  // namespace dvicl
