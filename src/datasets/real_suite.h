#ifndef DVICL_DATASETS_REAL_SUITE_H_
#define DVICL_DATASETS_REAL_SUITE_H_

#include <vector>

#include "datasets/benchmark_suite.h"

namespace dvicl {

// The 22-graph "real network" suite mirroring paper Table 1. The original
// SNAP/Konect datasets are not available offline, so each entry is a scaled
// synthetic analogue of its category (DESIGN.md §4):
//   - social networks: preferential attachment + planted twins + pendants,
//   - web graphs: copying model (naturally twin-rich) + pendants,
//   - p2p / communication / co-purchase: sparse models per category.
// What matters for the reproduction is preserved: heavy-tailed degrees,
// most orbit-coloring cells singleton, and symmetry concentrated in twins
// and small hanging structures.
//
// `scale` multiplies the base sizes (~2k-20k vertices at scale 1).
std::vector<NamedGraph> RealSuite(double scale = 1.0);

}  // namespace dvicl

#endif  // DVICL_DATASETS_REAL_SUITE_H_
