#include "datasets/generators.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <vector>

#include "common/rng.h"

namespace dvicl {

Graph CycleGraph(VertexId n) {
  std::vector<Edge> edges;
  edges.reserve(n);
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  if (n >= 3) edges.emplace_back(n - 1, 0);
  return Graph::FromEdges(n, std::move(edges));
}

Graph PathGraph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::FromEdges(n, std::move(edges));
}

Graph CompleteGraph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph CompleteBipartiteGraph(VertexId a, VertexId b) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  return Graph::FromEdges(a + b, std::move(edges));
}

Graph StarGraph(VertexId leaves) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= leaves; ++v) edges.emplace_back(0, v);
  return Graph::FromEdges(leaves + 1, std::move(edges));
}

Graph Torus3dGraph(VertexId side) {
  const VertexId s = side;
  auto id = [s](VertexId x, VertexId y, VertexId z) {
    return (x * s + y) * s + z;
  };
  std::vector<Edge> edges;
  for (VertexId x = 0; x < s; ++x) {
    for (VertexId y = 0; y < s; ++y) {
      for (VertexId z = 0; z < s; ++z) {
        edges.emplace_back(id(x, y, z), id((x + 1) % s, y, z));
        edges.emplace_back(id(x, y, z), id(x, (y + 1) % s, z));
        edges.emplace_back(id(x, y, z), id(x, y, (z + 1) % s));
      }
    }
  }
  return Graph::FromEdges(s * s * s, std::move(edges));
}

Graph ErdosRenyiGraph(VertexId n, double p, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(p)) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph PreferentialAttachmentGraph(VertexId n, uint32_t edges_per_vertex,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  // Endpoint pool: each occurrence weights a vertex by its degree.
  std::vector<VertexId> pool;
  const VertexId seed_size = std::max<VertexId>(edges_per_vertex, 2);
  for (VertexId v = 0; v + 1 < seed_size && v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
    pool.push_back(v);
    pool.push_back(v + 1);
  }
  for (VertexId v = seed_size; v < n; ++v) {
    for (uint32_t j = 0; j < edges_per_vertex; ++j) {
      const VertexId target =
          pool.empty() ? 0 : pool[rng.NextBounded(pool.size())];
      if (target == v) continue;
      edges.emplace_back(v, target);
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph RandomTreeGraph(VertexId n, uint64_t seed) {
  if (n <= 1) return Graph::FromEdges(n, {});
  if (n == 2) return Graph::FromEdges(2, {{0, 1}});
  Rng rng(seed);
  // Random Pruefer sequence of length n-2, decoded to a labeled tree.
  std::vector<VertexId> pruefer(n - 2);
  for (VertexId& entry : pruefer) {
    entry = static_cast<VertexId>(rng.NextBounded(n));
  }
  std::vector<uint32_t> degree(n, 1);
  for (VertexId entry : pruefer) ++degree[entry];
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  // Leaf pointer scan (O(n log n)-free classic decode).
  VertexId leaf_scan = 0;
  while (degree[leaf_scan] != 1) ++leaf_scan;
  VertexId leaf = leaf_scan;
  for (VertexId entry : pruefer) {
    edges.emplace_back(leaf, entry);
    if (--degree[entry] == 1 && entry < leaf_scan) {
      leaf = entry;
    } else {
      while (degree[++leaf_scan] != 1) {
      }
      leaf = leaf_scan;
    }
  }
  // Join the last leaf with vertex n-1.
  edges.emplace_back(leaf, n - 1);
  return Graph::FromEdges(n, std::move(edges));
}

Graph RandomRegularGraph(VertexId n, uint32_t d, uint64_t seed) {
  assert(d < n && (static_cast<uint64_t>(n) * d) % 2 == 0);
  Rng rng(seed);
  // Configuration model with whole-sample rejection: shuffle degree stubs,
  // pair consecutively, retry on self-loops/multi-edges. For d << n a few
  // attempts suffice; fall back to accepting the simplified graph after a
  // bounded number of retries (degrees then differ slightly).
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<VertexId> stubs;
    stubs.reserve(static_cast<size_t>(n) * d);
    for (VertexId v = 0; v < n; ++v) {
      for (uint32_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.Shuffle(&stubs);
    std::vector<Edge> edges;
    edges.reserve(stubs.size() / 2);
    bool simple = true;
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      if (stubs[i] == stubs[i + 1]) {
        simple = false;
        break;
      }
      edges.emplace_back(stubs[i], stubs[i + 1]);
    }
    if (!simple) continue;
    Graph g = Graph::FromEdges(n, std::move(edges));
    if (g.NumEdges() == static_cast<uint64_t>(n) * d / 2) return g;
  }
  // Bounded fallback: last attempt with duplicates collapsed.
  std::vector<VertexId> stubs;
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  rng.Shuffle(&stubs);
  std::vector<Edge> edges;
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) edges.emplace_back(stubs[i], stubs[i + 1]);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph CopyingModelGraph(VertexId n, uint32_t out_degree, double copy_prob,
                        uint64_t seed) {
  Rng rng(seed);
  // Keep forward adjacency during growth so prototype links can be copied.
  std::vector<std::vector<VertexId>> out(n);
  std::vector<Edge> edges;
  const VertexId start = std::max<VertexId>(out_degree + 1, 2);
  for (VertexId v = 1; v < start && v < n; ++v) {
    edges.emplace_back(v, v - 1);
    out[v].push_back(v - 1);
  }
  for (VertexId v = start; v < n; ++v) {
    const VertexId prototype = static_cast<VertexId>(rng.NextBounded(v));
    for (uint32_t j = 0; j < out_degree; ++j) {
      VertexId target;
      if (!out[prototype].empty() && rng.NextBernoulli(copy_prob)) {
        target = out[prototype][rng.NextBounded(out[prototype].size())];
      } else {
        target = static_cast<VertexId>(rng.NextBounded(v));
      }
      if (target == v) continue;
      edges.emplace_back(v, target);
      out[v].push_back(target);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph WithTwins(const Graph& graph, double twin_fraction, uint64_t seed) {
  Rng rng(seed);
  const VertexId n = graph.NumVertices();
  const VertexId extra =
      static_cast<VertexId>(twin_fraction * static_cast<double>(n) + 0.5);
  std::vector<Edge> edges = graph.Edges();
  VertexId next = n;
  for (VertexId i = 0; i < extra; ++i) {
    const VertexId original = static_cast<VertexId>(rng.NextBounded(n));
    for (VertexId u : graph.Neighbors(original)) {
      edges.emplace_back(next, u);
    }
    ++next;
  }
  return Graph::FromEdges(next, std::move(edges));
}

Graph WithTwinClasses(const Graph& graph, double class_fraction,
                      uint32_t max_class_size, uint64_t seed) {
  Rng rng(seed);
  const VertexId n = graph.NumVertices();
  const VertexId classes =
      static_cast<VertexId>(class_fraction * static_cast<double>(n) + 0.5);
  std::vector<Edge> edges = graph.Edges();
  VertexId next = n;
  for (VertexId i = 0; i < classes; ++i) {
    const VertexId original = static_cast<VertexId>(rng.NextBounded(n));
    // Geometric extra-twin count (p = 1/2), capped.
    uint32_t extra = 1;
    while (extra < max_class_size && rng.NextBernoulli(0.5)) ++extra;
    for (uint32_t t = 0; t < extra; ++t) {
      for (VertexId u : graph.Neighbors(original)) {
        edges.emplace_back(next, u);
      }
      ++next;
    }
  }
  return Graph::FromEdges(next, std::move(edges));
}

Graph WithPendantPaths(const Graph& graph, double fraction,
                       uint32_t max_depth, uint64_t seed) {
  Rng rng(seed);
  const VertexId n = graph.NumVertices();
  const VertexId chains =
      static_cast<VertexId>(fraction * static_cast<double>(n) + 0.5);
  std::vector<Edge> edges = graph.Edges();
  VertexId next = n;
  for (VertexId i = 0; i < chains; ++i) {
    VertexId anchor = static_cast<VertexId>(rng.NextBounded(n));
    const uint32_t depth =
        1 + static_cast<uint32_t>(rng.NextBounded(max_depth));
    for (uint32_t d = 0; d < depth; ++d) {
      edges.emplace_back(anchor, next);
      anchor = next++;
    }
  }
  return Graph::FromEdges(next, std::move(edges));
}

Graph WithWheelGadgets(const Graph& graph, uint32_t count,
                       uint32_t ring_size, uint64_t seed) {
  Rng rng(seed);
  const VertexId n = graph.NumVertices();
  std::vector<Edge> edges = graph.Edges();
  VertexId next = n;
  for (uint32_t i = 0; i < count; ++i) {
    const VertexId anchor = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId ring_start = next;
    for (uint32_t r = 0; r < ring_size; ++r) {
      edges.emplace_back(anchor, ring_start + r);
      edges.emplace_back(ring_start + r,
                         ring_start + (r + 1) % ring_size);
      ++next;
    }
  }
  return Graph::FromEdges(next, std::move(edges));
}

Graph HadamardGraph(uint32_t order) {
  assert((order & (order - 1)) == 0 && order > 0);
  const VertexId n = order;
  // Sylvester entry H[i][j] = (-1)^popcount(i & j).
  auto entry_positive = [](uint32_t i, uint32_t j) {
    return (__builtin_popcount(i & j) & 1) == 0;
  };
  // Vertices: [0,n) r+, [n,2n) r-, [2n,3n) c+, [3n,4n) c-.
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * (n + 1) * 2);
  for (uint32_t i = 0; i < n; ++i) {
    edges.emplace_back(i, n + i);          // r_i+ ~ r_i-
    edges.emplace_back(2 * n + i, 3 * n + i);  // c_i+ ~ c_i-
    for (uint32_t j = 0; j < n; ++j) {
      if (entry_positive(i, j)) {
        edges.emplace_back(i, 2 * n + j);      // + * + = +
        edges.emplace_back(n + i, 3 * n + j);  // - * - = +
      } else {
        edges.emplace_back(i, 3 * n + j);      // + * - = + when H=-1
        edges.emplace_back(n + i, 2 * n + j);
      }
    }
  }
  return Graph::FromEdges(4 * n, std::move(edges));
}

namespace {

// CFI construction over a 3-regular base graph: each base edge becomes a
// pair of "value" vertices (0/1); each base vertex becomes four "parity"
// vertices, one per even subset of its three incident edges; parity vertex
// for subset S connects to value x of edge e where x = [e in S]. Twisting
// one edge at one endpoint produces a non-isomorphic, 1-WL-equivalent
// sibling (Cai, Furer, Immerman).
Graph CfiOverBase(const Graph& base, bool twisted) {
  const VertexId bn = base.NumVertices();
  const auto& base_edges = base.Edges();
  const size_t bm = base_edges.size();

  // value vertex of edge index e with value x: 2*e + x
  // parity vertices of base vertex v: 2*bm + 4*v .. +3
  std::vector<size_t> edge_index_of;  // per (vertex, incident slot)
  std::vector<std::array<size_t, 3>> incident(bn, {0, 0, 0});
  std::vector<uint32_t> incident_count(bn, 0);
  for (size_t e = 0; e < bm; ++e) {
    incident[base_edges[e].first][incident_count[base_edges[e].first]++] = e;
    incident[base_edges[e].second][incident_count[base_edges[e].second]++] =
        e;
  }

  std::vector<Edge> edges;
  const size_t twist_edge = 0;  // twist edge 0 at its first endpoint
  for (VertexId v = 0; v < bn; ++v) {
    assert(incident_count[v] == 3);
    const std::array<size_t, 3> inc = incident[v];
    // Even subsets of {0,1,2}: {}, {0,1}, {0,2}, {1,2}.
    const uint8_t subsets[4] = {0b000, 0b011, 0b101, 0b110};
    for (int s = 0; s < 4; ++s) {
      const VertexId parity_vertex =
          static_cast<VertexId>(2 * bm + 4 * v + s);
      for (int slot = 0; slot < 3; ++slot) {
        uint32_t value = (subsets[s] >> slot) & 1;
        if (twisted && inc[slot] == twist_edge &&
            v == base_edges[twist_edge].first) {
          value ^= 1;
        }
        edges.emplace_back(parity_vertex,
                           static_cast<VertexId>(2 * inc[slot] + value));
      }
    }
  }
  return Graph::FromEdges(static_cast<VertexId>(2 * bm + 4 * bn),
                          std::move(edges));
}

}  // namespace

Graph CfiGraph(uint32_t base_n, bool twisted) {
  assert(base_n >= 6 && base_n % 2 == 0);
  // Circulant C_n(1, n/2): cycle plus diameters, 3-regular.
  std::vector<Edge> base_edges;
  for (VertexId v = 0; v < base_n; ++v) {
    base_edges.emplace_back(v, (v + 1) % base_n);
  }
  for (VertexId v = 0; v < base_n / 2; ++v) {
    base_edges.emplace_back(v, v + base_n / 2);
  }
  Graph base = Graph::FromEdges(base_n, std::move(base_edges));
  return CfiOverBase(base, twisted);
}

Graph MiyazakiLikeGraph(uint32_t rungs) {
  assert(rungs >= 3);
  // Prism (circular ladder) base: two concentric cycles plus rungs,
  // 3-regular.
  std::vector<Edge> base_edges;
  for (VertexId v = 0; v < rungs; ++v) {
    base_edges.emplace_back(v, (v + 1) % rungs);
    base_edges.emplace_back(rungs + v, rungs + (v + 1) % rungs);
    base_edges.emplace_back(v, rungs + v);
  }
  Graph base = Graph::FromEdges(2 * rungs, std::move(base_edges));
  return CfiOverBase(base, /*twisted=*/true);
}

namespace {

bool IsPrime(uint32_t q) {
  if (q < 2) return false;
  for (uint32_t d = 2; d * d <= q; ++d) {
    if (q % d == 0) return false;
  }
  return true;
}

}  // namespace

Graph ProjectivePlaneGraph(uint32_t q) {
  const bool prime = IsPrime(q);
  assert(prime);
  (void)prime;
  // Canonical representatives of PG(2, q) points: (1,a,b), (0,1,a), (0,0,1).
  std::vector<std::array<uint32_t, 3>> points;
  for (uint32_t a = 0; a < q; ++a) {
    for (uint32_t b = 0; b < q; ++b) points.push_back({1, a, b});
  }
  for (uint32_t a = 0; a < q; ++a) points.push_back({0, 1, a});
  points.push_back({0, 0, 1});

  const VertexId per_side = static_cast<VertexId>(points.size());
  std::vector<Edge> edges;
  for (VertexId pi = 0; pi < per_side; ++pi) {
    for (VertexId li = 0; li < per_side; ++li) {
      const auto& p = points[pi];
      const auto& l = points[li];  // lines use the same representatives
      const uint32_t dot = (p[0] * l[0] + p[1] * l[1] + p[2] * l[2]) % q;
      if (dot == 0) edges.emplace_back(pi, per_side + li);
    }
  }
  return Graph::FromEdges(2 * per_side, std::move(edges));
}

Graph AffinePlaneGraph(uint32_t q) {
  const bool prime = IsPrime(q);
  assert(prime);
  (void)prime;
  // Points: (x, y) in GF(q)^2 -> id x*q + y.
  // Lines: y = m x + c (id q^2 + m*q + c) and x = c (id q^2 + q^2 + c).
  const VertexId num_points = q * q;
  std::vector<Edge> edges;
  for (uint32_t m = 0; m < q; ++m) {
    for (uint32_t c = 0; c < q; ++c) {
      const VertexId line = num_points + m * q + c;
      for (uint32_t x = 0; x < q; ++x) {
        const uint32_t y = (m * x + c) % q;
        edges.emplace_back(x * q + y, line);
      }
    }
  }
  for (uint32_t c = 0; c < q; ++c) {
    const VertexId line = num_points + q * q + c;
    for (uint32_t y = 0; y < q; ++y) edges.emplace_back(c * q + y, line);
  }
  return Graph::FromEdges(num_points + q * q + q, std::move(edges));
}

Graph CircuitLikeGraph(uint32_t inputs, uint32_t gates, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  const VertexId n = inputs + gates;
  for (VertexId g = inputs; g < n; ++g) {
    const VertexId a = static_cast<VertexId>(rng.NextBounded(g));
    VertexId b = static_cast<VertexId>(rng.NextBounded(g));
    if (b == a) b = (b + 1) % g;
    edges.emplace_back(g, a);
    edges.emplace_back(g, b);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph GadgetForestGraph(uint32_t copies, uint32_t rungs) {
  const Graph proto = MiyazakiLikeGraph(rungs);
  const VertexId stride = proto.NumVertices();
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(proto.NumEdges()) * copies);
  for (uint32_t c = 0; c < copies; ++c) {
    const VertexId offset = c * stride;
    for (const Edge& e : proto.Edges()) {
      edges.emplace_back(e.first + offset, e.second + offset);
    }
  }
  return Graph::FromEdges(stride * copies, std::move(edges));
}

}  // namespace dvicl
