#ifndef DVICL_DATASETS_BENCHMARK_SUITE_H_
#define DVICL_DATASETS_BENCHMARK_SUITE_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// A named evaluation graph, as used by the table harnesses in bench/.
struct NamedGraph {
  std::string name;
  std::string category;
  Graph graph;
};

// The benchmark-graph suite mirroring paper Table 2 (one representative per
// bliss-collection family). Families with an exact mathematical definition
// are generated exactly (ag2/pg2 over prime q, grid-w-3, had, cfi,
// mz-aug-style); the SAT-derived families (difp, fpga, s3) are circuit-like
// synthetics (DESIGN.md §4). Sizes are scaled to laptop-friendly instances;
// `scale` in {1, 2} selects small/large variants.
std::vector<NamedGraph> BenchmarkSuite(int scale = 1);

}  // namespace dvicl

#endif  // DVICL_DATASETS_BENCHMARK_SUITE_H_
