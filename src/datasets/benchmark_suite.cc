#include "datasets/benchmark_suite.h"

#include "datasets/generators.h"

namespace dvicl {

std::vector<NamedGraph> BenchmarkSuite(int scale) {
  const bool large = scale >= 2;
  std::vector<NamedGraph> suite;
  // Names follow the paper's Table 2 families with our instance size.
  suite.push_back({large ? "ag2-23" : "ag2-13", "affine plane",
                   AffinePlaneGraph(large ? 23 : 13)});
  suite.push_back({large ? "cfi-112" : "cfi-56", "CFI",
                   CfiGraph(large ? 16 : 8, /*twisted=*/false)});
  suite.push_back({large ? "difp-like-2" : "difp-like-1", "circuit (SAT sub)",
                   CircuitLikeGraph(large ? 256 : 96, large ? 4096 : 1536,
                                    9001)});
  suite.push_back({large ? "fpga-like-2" : "fpga-like-1", "circuit (SAT sub)",
                   CircuitLikeGraph(large ? 128 : 64, large ? 2048 : 1024,
                                    9002)});
  suite.push_back({large ? "grid-w-3-10" : "grid-w-3-6", "torus",
                   Torus3dGraph(large ? 10 : 6)});
  suite.push_back({large ? "had-64" : "had-32", "Hadamard",
                   HadamardGraph(large ? 64 : 32)});
  suite.push_back({large ? "mz-aug-16" : "mz-aug-8", "Miyazaki-style",
                   MiyazakiLikeGraph(large ? 16 : 8)});
  suite.push_back({large ? "pg2-23" : "pg2-13", "projective plane",
                   ProjectivePlaneGraph(large ? 23 : 13)});
  suite.push_back({large ? "s3-like-2" : "s3-like-1", "circuit (SAT sub)",
                   CircuitLikeGraph(large ? 512 : 256, large ? 8192 : 3072,
                                    9003)});
  return suite;
}

}  // namespace dvicl
