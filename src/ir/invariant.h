#ifndef DVICL_IR_INVARIANT_H_
#define DVICL_IR_INVARIANT_H_

#include <cstdint>

#include "graph/graph.h"
#include "refine/coloring.h"

namespace dvicl {

// Node invariants phi (paper §4): an isomorphism-invariant summary of a
// search-tree node, used for the pruning operations P_A / P_B. Both
// variants hash only data that is invariant under vertex relabeling (cell
// start indices, cell sizes, and cell-to-cell adjacency statistics), so
// phi(G^gamma, pi^gamma, nu^gamma) = phi(G, pi, nu) holds by construction.
//
// A hash cannot satisfy the "certificate on leaves" property exactly, so —
// as real implementations do — the search compares full certificates at
// leaves and uses the invariant only for subtree ordering/pruning.
enum class InvariantRule {
  // Partition shape only: the sequence of (cell start, cell size).
  kShape,
  // Shape plus per-vertex neighborhood color multisets — strictly stronger,
  // costs O(m) per node (traces-flavored).
  kShapeAndAdjacency,
};

uint64_t ComputeNodeInvariant(const Graph& graph, const Coloring& pi,
                              InvariantRule rule);

}  // namespace dvicl

#endif  // DVICL_IR_INVARIANT_H_
