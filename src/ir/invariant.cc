#include "ir/invariant.h"

#include <algorithm>

#include "common/arena.h"

namespace dvicl {

namespace {

inline uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t ComputeNodeInvariant(const Graph& graph, const Coloring& pi,
                              InvariantRule rule) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (VertexId start : pi.Cells()) {
    hash = MixHash(hash, start);
    hash = MixHash(hash, pi.CellSizeAt(start));
  }
  if (rule == InvariantRule::kShapeAndAdjacency) {
    // For every vertex, hash (own color, multiset of neighbor colors); the
    // per-vertex hashes are combined commutatively within a cell so the
    // result does not depend on vertex order. One sort buffer serves every
    // vertex of the node (this runs once per IR search-tree node, so a
    // per-vertex allocation here dominated the traces-like preset).
    ArenaFrame frame(pi.arena());
    SmallVec<uint32_t, 128> neighbor_colors(pi.arena());
    for (VertexId start : pi.Cells()) {
      uint64_t cell_hash = 0;
      for (VertexId v : pi.CellVerticesAt(start)) {
        neighbor_colors.clear();
        neighbor_colors.reserve(graph.Degree(v));
        for (VertexId u : graph.Neighbors(v)) {
          neighbor_colors.push_back(pi.ColorOf(u));
        }
        std::sort(neighbor_colors.begin(), neighbor_colors.end());
        uint64_t vertex_hash = 0x100000001b3ull;
        for (uint32_t c : neighbor_colors) vertex_hash = MixHash(vertex_hash, c);
        cell_hash += vertex_hash;  // commutative combine within the cell
      }
      hash = MixHash(hash, cell_hash);
    }
  }
  return hash;
}

}  // namespace dvicl
