#include "ir/target_cell.h"

namespace dvicl {

VertexId SelectTargetCell(const Coloring& pi, TargetCellRule rule) {
  VertexId chosen = kNoCell;
  VertexId chosen_size = 0;
  for (VertexId start : pi.Cells()) {
    const VertexId size = pi.CellSizeAt(start);
    if (size <= 1) continue;
    switch (rule) {
      case TargetCellRule::kFirst:
        return start;
      case TargetCellRule::kFirstSmallest:
        if (chosen == kNoCell || size < chosen_size) {
          chosen = start;
          chosen_size = size;
        }
        break;
      case TargetCellRule::kLargest:
        if (chosen == kNoCell || size > chosen_size) {
          chosen = start;
          chosen_size = size;
        }
        break;
    }
  }
  return chosen;
}

}  // namespace dvicl
