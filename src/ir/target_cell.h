#ifndef DVICL_IR_TARGET_CELL_H_
#define DVICL_IR_TARGET_CELL_H_

#include "graph/graph.h"
#include "refine/coloring.h"

namespace dvicl {

// Target cell selectors T (paper §4): given a non-discrete equitable
// coloring, pick the non-singleton cell whose vertices the search tree
// individualizes next. The choice "has a significant effect on the shape of
// the search tree" — each of the three baselines the paper compares against
// made a different one, which is what our presets mirror.
enum class TargetCellRule {
  // nauty [26]: the first smallest non-singleton cell.
  kFirstSmallest,
  // bliss [15] (following Kocay [18]): the first non-singleton cell.
  kFirst,
  // traces-flavored: the largest non-singleton cell (traces itself uses
  // breadth-first traversal with experimental-path selection; the largest
  // cell emulates its preference for high-branching, high-information
  // cells).
  kLargest,
};

// Returns the start index of the selected cell, or kNoCell when the
// coloring is discrete (T(G, pi, nu) = empty, property (i)).
inline constexpr VertexId kNoCell = static_cast<VertexId>(-1);

VertexId SelectTargetCell(const Coloring& pi, TargetCellRule rule);

}  // namespace dvicl

#endif  // DVICL_IR_TARGET_CELL_H_
