#include "ir/ir_canonical.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/arena.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "refine/refiner.h"

namespace dvicl {

namespace {

struct PresetConfig {
  TargetCellRule target_cell;
  InvariantRule invariant;
};

PresetConfig ConfigFor(IrPreset preset) {
  switch (preset) {
    case IrPreset::kNautyLike:
      return {TargetCellRule::kFirstSmallest, InvariantRule::kShape};
    case IrPreset::kBlissLike:
      return {TargetCellRule::kFirst, InvariantRule::kShape};
    case IrPreset::kTracesLike:
      return {TargetCellRule::kLargest, InvariantRule::kShapeAndAdjacency};
  }
  return {TargetCellRule::kFirst, InvariantRule::kShape};
}

// ~3.2 GB of live colorings (4 arrays of 4-byte entries per level).
constexpr uint64_t kMaxLiveColoringWords = 200ull * 1000 * 1000;

// Sentinel: no backjump requested.
constexpr size_t kNoBackjump = static_cast<size_t>(-1);

class IrSearch {
 public:
  IrSearch(const Graph& graph, const IrOptions& options)
      : graph_(graph), options_(options), config_(ConfigFor(options.preset)) {}

  IrResult Run(const Coloring& initial) {
    obs::TraceSpan span(options_.trace, "ir.search", "ir");
    span.AddArg("n", graph_.NumVertices());

    // The run frame covers every arena carve-out of the search; declared
    // before the root coloring so the rewind happens after all arena-backed
    // locals are gone. Results that escape (labeling, certificate,
    // generators) are heap-allocated members, never arena-backed.
    ArenaFrame run_frame(arena_);
    Coloring pi(initial, arena_);
    {
      obs::TraceSpan refine_span(options_.trace, "ir.refine_root", "refine");
      RefineToEquitable(graph_, &pi);
    }
    const std::span<const uint32_t> offsets = pi.ColorOffsetsView();
    colors_.assign(offsets.begin(), offsets.end());

    Explore(pi, /*depth=*/0, /*cmp_with_best=*/0, /*on_ref_path=*/true);
    span.AddArg("tree_nodes", stats_.tree_nodes);

    IrResult result;
    result.outcome = aborted_ ? abort_cause_ : RunOutcome::kCompleted;
    if (result.completed()) {
      // Degradation contract: a partial labeling/certificate never leaves
      // the search. Generators found before an abort are still returned —
      // each was verified individually, so they are valid regardless.
      result.canonical_labeling = std::move(best_labeling_);
      result.certificate = std::move(best_cert_);
    }
    result.automorphism_generators = std::move(generators_);
    result.stats = stats_;
    return result;
  }

 private:
  void AddAutomorphism(Permutation gamma) {
    if (gamma.IsIdentity()) return;
    assert(IsColorPreservingAutomorphism(graph_, colors_, gamma));
    ++stats_.automorphisms_found;
    if (options_.trace != nullptr) {
      options_.trace->AddInstant("ir.automorphism", "ir",
                                 {{"total", stats_.automorphisms_found}});
    }
    generators_.push_back(std::move(gamma));
  }

  // Which budget fired, or kCompleted when none did. Checked once per
  // search-tree node; the first cause found wins (check order: node budget,
  // cancel, memory, wall clock).
  RunOutcome BudgetCause() {
    if (options_.max_tree_nodes != 0 &&
        stats_.tree_nodes > options_.max_tree_nodes) {
      return RunOutcome::kNodeBudget;
    }
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      return RunOutcome::kCancelled;
    }
    if (options_.memory_budget != nullptr &&
        options_.memory_budget->Exceeded()) {
      return RunOutcome::kMemoryBudget;
    }
    if (options_.time_limit_seconds > 0.0 && (stats_.tree_nodes & 0xff) == 0 &&
        stopwatch_.ElapsedSeconds() > options_.time_limit_seconds) {
      return RunOutcome::kDeadline;
    }
    return RunOutcome::kCompleted;
  }

  void Abort(RunOutcome cause) {
    aborted_ = true;
    abort_cause_ = cause;
  }

  // Processes a discrete coloring. Returns the backjump depth if a NEW
  // automorphism against the reference leaf was found (P_C: the whole
  // divergent branch is the gamma-image of the already-explored reference
  // branch), else kNoBackjump.
  size_t HandleLeaf(const Coloring& pi, int cmp_with_best) {
    ++stats_.leaves;
    Permutation gamma = pi.ToPermutation();
    Certificate cert = MakeCertificate(graph_, colors_, gamma.ImageArray());

    if (!have_ref_) {
      // Leftmost leaf becomes both the reference (for automorphism
      // discovery) and the initial best (canonical candidate).
      have_ref_ = true;
      ref_path_ = current_path_;
      ref_verts_ = current_verts_;
      ref_cert_ = cert;
      ref_labeling_ = gamma;
      best_path_ = current_path_;
      best_cert_ = std::move(cert);
      best_labeling_ = std::move(gamma);
      return kNoBackjump;
    }

    // Automorphism discovery: equal certificates mean the two labelings
    // produce the identical labeled colored graph, so
    // gamma . ref^{-1} in Aut(G, pi).
    size_t backjump = kNoBackjump;
    if (cert == ref_cert_) {
      AddAutomorphism(gamma.Then(ref_labeling_.Inverse()));
      // Backjump (McKay): return to the deepest node shared with the
      // reference path; the rest of the divergent branch is an automorphic
      // image of the fully-explored reference branch.
      const size_t limit =
          std::min(current_verts_.size(), ref_verts_.size());
      size_t diverge = 0;
      while (diverge < limit &&
             current_verts_[diverge] == ref_verts_[diverge]) {
        ++diverge;
      }
      if (diverge < current_verts_.size()) {
        backjump = diverge;
        ++stats_.backjumps;
        if (options_.trace != nullptr) {
          options_.trace->AddInstant("ir.backjump", "ir",
                                     {{"to_depth", diverge}});
        }
      }
    } else if (cert == best_cert_) {
      AddAutomorphism(gamma.Then(best_labeling_.Inverse()));
    }

    // Canonical candidate update: maximize (invariant path, certificate).
    bool take = false;
    if (cmp_with_best > 0) {
      take = true;
    } else if (cmp_with_best == 0) {
      if (current_path_.size() != best_path_.size()) {
        take = current_path_.size() > best_path_.size();
      } else {
        take = cert > best_cert_;
      }
    }
    if (take) {
      best_path_ = current_path_;
      best_cert_ = std::move(cert);
      best_labeling_ = std::move(gamma);
    }
    return backjump;
  }

  // True iff this node lies literally on the reference path (same
  // individualized vertices). During the initial leftmost descent the
  // reference is still being built, and the node trivially qualifies.
  bool OnLiteralRefPath(size_t depth) const {
    if (!have_ref_) return true;
    if (depth > ref_verts_.size()) return false;
    for (size_t i = 0; i < depth; ++i) {
      if (current_verts_[i] != ref_verts_[i]) return false;
    }
    return true;
  }

  // Orbit partition of the discovered group elements that fix the current
  // path prefix pointwise (the P_C stabilizer). Rebuilt lazily per node as
  // new generators arrive.
  class PrefixOrbits {
   public:
    PrefixOrbits(const IrSearch& search, size_t depth)
        : search_(search), depth_(depth), parent_(search.arena_) {}

    VertexId Find(VertexId v) {
      Refresh();
      return FindRoot(v);
    }

   private:
    void Refresh() {
      if (parent_.empty()) {
        parent_.resize(search_.graph_.NumVertices());
        std::iota(parent_.begin(), parent_.end(), 0);
      }
      for (; seen_ < search_.generators_.size(); ++seen_) {
        const Permutation& g = search_.generators_[seen_];
        bool fixes_prefix = true;
        for (size_t i = 0; i < depth_ && fixes_prefix; ++i) {
          fixes_prefix = g(search_.current_verts_[i]) ==
                         search_.current_verts_[i];
        }
        if (!fixes_prefix) continue;
        for (VertexId v = 0; v < g.Size(); ++v) {
          if (g(v) == v) continue;
          VertexId a = FindRoot(v);
          VertexId b = FindRoot(g(v));
          if (a != b) parent_[std::max(a, b)] = std::min(a, b);
        }
      }
    }

    VertexId FindRoot(VertexId v) {
      while (parent_[v] != v) {
        parent_[v] = parent_[parent_[v]];
        v = parent_[v];
      }
      return v;
    }

    const IrSearch& search_;
    const size_t depth_;
    SmallVec<VertexId> parent_;
    size_t seen_ = 0;
  };

  // Returns a backjump depth (< depth) to unwind to, or kNoBackjump.
  size_t Explore(const Coloring& pi, size_t depth, int cmp_with_best,
                 bool on_ref_path) {
    if (aborted_) return kNoBackjump;
    ++stats_.tree_nodes;
    // Sampled search-progress track: cheap enough (one event per 1024
    // nodes) to leave on for the whole run when tracing is enabled.
    if (options_.trace != nullptr && (stats_.tree_nodes & 0x3ff) == 0) {
      options_.trace->AddCounter("ir.tree_nodes", stats_.tree_nodes);
    }
    if (DVICL_FAILPOINT(failpoint::sites::kIrSearchNode)) {
      Abort(RunOutcome::kInternalFault);
      return kNoBackjump;
    }
    const RunOutcome budget = BudgetCause();
    if (budget != RunOutcome::kCompleted) {
      Abort(budget);
      return kNoBackjump;
    }

    if (pi.IsDiscrete()) return HandleLeaf(pi, cmp_with_best);

    // Resource guard: the search keeps one coloring copy per recursion
    // level, so depth * n words of live memory. Abort (reporting an
    // incomplete run, like a timeout) rather than exhaust memory on
    // adversarially deep trees over large graphs.
    if (static_cast<uint64_t>(depth + 1) * graph_.NumVertices() >
        kMaxLiveColoringWords) {
      Abort(RunOutcome::kMemoryBudget);
      return kNoBackjump;
    }

    const VertexId cell_start = SelectTargetCell(pi, config_.target_cell);
    assert(cell_start != kNoCell);
    auto cell = pi.CellVerticesAt(cell_start);
    SmallVec<VertexId, 16> candidates(arena_);
    candidates.assign(cell.begin(), cell.end());
    std::sort(candidates.begin(), candidates.end());

    // P_C on reference-path nodes: individualize one representative per
    // orbit of the prefix-stabilizing subgroup discovered so far.
    const bool prune_by_orbits = on_ref_path && OnLiteralRefPath(depth);
    PrefixOrbits orbits(*this, depth);
    SmallVec<VertexId, 16> processed(arena_);

    for (VertexId v : candidates) {
      if (aborted_) return kNoBackjump;
      if (prune_by_orbits && have_ref_) {
        bool redundant = false;
        const VertexId root_v = orbits.Find(v);
        for (VertexId u : processed) {
          if (orbits.Find(u) == root_v) {
            redundant = true;
            break;
          }
        }
        if (redundant) {
          ++stats_.orbit_prunes;
          continue;
        }
        processed.push_back(v);
      }

      // Per-candidate frame: the child coloring, its refinement scratch and
      // everything the subtree below allocates are reclaimed when this
      // iteration ends. The frame opens AFTER the orbit block above, so any
      // growth of `processed` / the orbit scratch lands outside it and
      // survives into later iterations.
      ArenaFrame child_frame(arena_);
      Coloring child(pi, arena_);
      const VertexId singleton_start = child.ColorOf(v);
      const VertexId remainder_start = child.Individualize(v);
      const VertexId seeds[2] = {singleton_start, remainder_start};
      RefineFrom(graph_, &child,
                 std::span<const VertexId>(
                     seeds, remainder_start == singleton_start ? 1 : 2));

      const uint64_t inv =
          ComputeNodeInvariant(graph_, child, config_.invariant);

      // Comparison of the child's invariant prefix against the best path.
      int child_cmp = cmp_with_best;
      if (have_ref_ && cmp_with_best == 0) {
        if (depth >= best_path_.size()) {
          child_cmp = 1;
        } else if (inv != best_path_[depth]) {
          child_cmp = inv > best_path_[depth] ? 1 : -1;
        }
      }
      const bool child_on_ref =
          on_ref_path &&
          (!have_ref_ || (depth < ref_path_.size() && inv == ref_path_[depth]));

      // P_A + P_B: a subtree that can neither contain the canonical leaf
      // (prefix already smaller than the best) nor an automorphism with the
      // reference leaf (off the reference path) is fruitless. In
      // automorphisms-only mode the canonical side is moot, so everything
      // off the reference path is pruned.
      if (have_ref_ && !child_on_ref &&
          (options_.automorphisms_only || child_cmp < 0)) {
        ++stats_.pruned_nonref;
        continue;
      }

      current_path_.push_back(inv);
      current_verts_.push_back(v);
      const size_t backjump =
          Explore(child, depth + 1, child_cmp, child_on_ref);
      current_path_.pop_back();
      current_verts_.pop_back();

      if (backjump != kNoBackjump) {
        if (backjump < depth) return backjump;  // unwind further
        // backjump == depth: this is the divergence node; continue with
        // the next candidate.
      }
    }
    return kNoBackjump;
  }

  const Graph& graph_;
  const IrOptions options_;
  const PresetConfig config_;
  Arena* const arena_ = options_.arena;
  Stopwatch stopwatch_;

  std::vector<uint32_t> colors_;
  std::vector<Permutation> generators_;

  std::vector<uint64_t> current_path_;
  std::vector<VertexId> current_verts_;

  bool have_ref_ = false;
  std::vector<uint64_t> ref_path_;
  std::vector<VertexId> ref_verts_;
  Certificate ref_cert_;
  Permutation ref_labeling_;

  std::vector<uint64_t> best_path_;
  Certificate best_cert_;
  Permutation best_labeling_;

  bool aborted_ = false;
  RunOutcome abort_cause_ = RunOutcome::kCancelled;
  IrStats stats_;
};

}  // namespace

IrResult IrCanonicalLabeling(const Graph& graph, const Coloring& initial,
                             const IrOptions& options) {
  DVICL_CHECK_EQ(initial.NumVertices(), graph.NumVertices())
      << "initial coloring degree must match the graph";
  IrSearch search(graph, options);
  return search.Run(initial);
}

}  // namespace dvicl
