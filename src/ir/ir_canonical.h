#ifndef DVICL_IR_IR_CANONICAL_H_
#define DVICL_IR_IR_CANONICAL_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/outcome.h"
#include "graph/certificate.h"
#include "graph/graph.h"
#include "ir/invariant.h"
#include "ir/target_cell.h"
#include "perm/permutation.h"
#include "refine/coloring.h"

namespace dvicl {

class MemoryBudget;

namespace obs {
class TraceRecorder;
}  // namespace obs

// Individualization-refinement canonical labeling (paper §4): a backtrack
// search tree over colorings, where each edge individualizes one vertex of
// the target cell and re-refines. The canonical labeling is the extreme
// leaf under (invariant path, certificate) order; automorphisms are
// discovered between leaves with equal certificates, with the three pruning
// operations P_A (not on the reference path), P_B (cannot contain the
// canonical leaf) and P_C (root-level orbit pruning by discovered
// automorphisms).
//
// The three presets mirror the baselines the paper compares DviCL against;
// the real tools are not available offline, so these presets reproduce each
// tool's signature design choice (see DESIGN.md §4).
enum class IrPreset {
  kNautyLike,   // first-smallest target cell, shape invariant
  kBlissLike,   // first target cell, shape invariant
  kTracesLike,  // largest target cell, shape+adjacency invariant
};

struct IrOptions {
  IrPreset preset = IrPreset::kBlissLike;
  // saucy-like mode (paper §3: "saucy only finds graph symmetries"): skip
  // the canonical-labeling part of the search and only discover the
  // automorphism generating set. The search then explores just the
  // reference path, its sibling branches down to their first leaves, and
  // nothing else — typically far cheaper. In this mode IrResult's
  // canonical_labeling/certificate are the reference leaf's, which is a
  // valid labeling but NOT canonical (do not compare certificates).
  bool automorphisms_only = false;
  // Abort after visiting this many search-tree nodes (0 = unlimited). An
  // aborted run reports RunOutcome::kNodeBudget; its canonical outputs are
  // cleared (graceful degradation — no partial certificate escapes).
  uint64_t max_tree_nodes = 0;
  // Wall-clock limit in seconds (0 = unlimited); exceeding it reports
  // RunOutcome::kDeadline.
  double time_limit_seconds = 0.0;
  // Optional RSS-delta budget (common/memory_budget.h), polled once per
  // search-tree node alongside the time limit; exceeding it reports
  // RunOutcome::kMemoryBudget. Not owned; may be shared by concurrent leaf
  // searches of one DviCL run (MemoryBudget is thread-safe).
  MemoryBudget* memory_budget = nullptr;
  // Optional cooperative cancellation flag (e.g. CancelToken::Flag() from
  // common/task_pool.h): polled once per search-tree node; when it reads
  // true the run aborts and is reported incomplete. The parallel DviCL
  // driver uses this to stop sibling leaf runs once one of them exceeded
  // its budget.
  const std::atomic<bool>* cancel = nullptr;
  // Optional tracing (obs/trace.h): when non-null the run records a span
  // over the whole search, instant events for discovered automorphisms and
  // backjumps, and a periodically sampled "ir.tree_nodes" counter track.
  // Null (the default) costs one branch per would-be event.
  obs::TraceRecorder* trace = nullptr;
  // Optional bump arena (common/arena.h) for the search's node-local state:
  // colorings, candidate lists and orbit scratch are carved from it under
  // per-node frames instead of the heap. Not owned; must belong to the
  // calling thread (the DviCL driver passes its worker's
  // ThreadScratchArena()). Everything that escapes the run — labeling,
  // certificate, generators — is heap-allocated regardless, so an aborted
  // run cannot leak arena pointers (DESIGN.md §13). Null = plain heap.
  Arena* arena = nullptr;
};

struct IrStats {
  uint64_t tree_nodes = 0;
  uint64_t leaves = 0;
  uint64_t automorphisms_found = 0;
  // Why subtrees were NOT explored, by pruning cause (paper §4 operations):
  // children cut because they can neither contain the canonical leaf nor an
  // automorphism with the reference leaf (P_A + P_B)...
  uint64_t pruned_nonref = 0;
  // ...candidates skipped on the reference path because a discovered
  // automorphism maps them onto an already-explored sibling (P_C)...
  uint64_t orbit_prunes = 0;
  // ...and McKay backjumps taken after an automorphism was found between
  // the current leaf and the reference leaf.
  uint64_t backjumps = 0;

  void MergeFrom(const IrStats& other) {
    tree_nodes += other.tree_nodes;
    leaves += other.leaves;
    automorphisms_found += other.automorphisms_found;
    pruned_nonref += other.pruned_nonref;
    orbit_prunes += other.orbit_prunes;
    backjumps += other.backjumps;
  }
};

struct IrResult {
  // Structured termination cause (common/outcome.h). On anything other
  // than kCompleted: canonical_labeling and certificate are EMPTY (a
  // partial canonical form is never exposed); automorphism_generators
  // holds the (individually verified, hence valid) generators found before
  // the abort; stats covers the work actually done.
  RunOutcome outcome = RunOutcome::kCancelled;
  bool completed() const { return outcome == RunOutcome::kCompleted; }
  // gamma*: vertex -> canonical position, (G, pi)^{gamma*} = C(G, pi).
  Permutation canonical_labeling;
  // Certificate of (G, pi) under gamma*; equal certificates <=> isomorphic.
  Certificate certificate;
  // Generating set of Aut(G, pi) discovered during the search.
  std::vector<Permutation> automorphism_generators;
  IrStats stats;
};

// Canonically labels the colored graph (graph, initial). `initial` is
// refined to equitable first; pass Coloring::Unit(n) for an uncolored graph.
IrResult IrCanonicalLabeling(const Graph& graph, const Coloring& initial,
                             const IrOptions& options = {});

}  // namespace dvicl

#endif  // DVICL_IR_IR_CANONICAL_H_
