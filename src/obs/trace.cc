#include "obs/trace.h"

#include <atomic>
#include <fstream>

#include "obs/json_writer.h"

namespace dvicl {
namespace obs {

namespace {

std::atomic<uint64_t> next_recorder_id{1};

// Last (recorder, buffer) pair this thread appended to. Recorder ids are
// process-unique and never reused, so a stale cache entry can never alias a
// newer recorder that happens to occupy the same address.
struct TlCache {
  uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlCache tl_cache;

}  // namespace

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()),
      recorder_id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (tl_cache.recorder_id == recorder_id_) {
    return static_cast<ThreadBuffer*>(tl_cache.buffer);
  }
  const std::thread::id self = std::this_thread::get_id();
  MutexLock lock(mu_);
  ThreadBuffer* buffer = nullptr;
  for (const auto& candidate : buffers_) {
    if (candidate->thread == self) {
      buffer = candidate.get();
      break;
    }
  }
  if (buffer == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->thread = self;
    buffer->tid = static_cast<uint32_t>(buffers_.size() - 1);
  }
  tl_cache = {recorder_id_, buffer};
  return buffer;
}

void TraceRecorder::Append(const char* name, const char* category,
                           char phase, uint64_t ts_us, uint64_t dur_us,
                           std::initializer_list<Arg> args) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  Event event;
  event.name = name;
  event.category = category;
  event.phase = phase;
  event.num_args = 0;
  for (const Arg& arg : args) {
    if (event.num_args >= 2) break;
    event.args[event.num_args++] = arg;
  }
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  buffer->events.push_back(event);
}

void TraceRecorder::AddComplete(const char* name, const char* category,
                                uint64_t start_us, uint64_t dur_us,
                                std::initializer_list<Arg> args) {
  Append(name, category, 'X', start_us, dur_us, args);
}

void TraceRecorder::AddInstant(const char* name, const char* category,
                               std::initializer_list<Arg> args) {
  Append(name, category, 'i', NowMicros(), 0, args);
}

void TraceRecorder::AddCounter(const char* name, uint64_t value) {
  Append(name, "counter", 'C', NowMicros(), value, {});
}

size_t TraceRecorder::NumThreadsSeen() const {
  MutexLock lock(mu_);
  return buffers_.size();
}

uint64_t TraceRecorder::DroppedEvents() const {
  MutexLock lock(mu_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) dropped += buffer->dropped;
  return dropped;
}

std::string TraceRecorder::ToJson() const {
  MutexLock lock(mu_);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("traceEvents");
  writer.BeginArray();
  for (const auto& buffer : buffers_) {
    // Thread-name metadata event so the Perfetto track labels are stable.
    writer.BeginObject();
    writer.Key("name");
    writer.String("thread_name");
    writer.Key("ph");
    writer.String("M");
    writer.Key("pid");
    writer.Uint(1);
    writer.Key("tid");
    writer.Uint(buffer->tid);
    writer.Key("args");
    writer.BeginObject();
    writer.Key("name");
    writer.String(buffer->tid == 0 ? "owner"
                                   : "worker-" + std::to_string(buffer->tid));
    writer.EndObject();
    writer.EndObject();

    for (const Event& event : buffer->events) {
      writer.BeginObject();
      writer.Key("name");
      writer.String(event.name);
      writer.Key("cat");
      writer.String(event.category);
      writer.Key("ph");
      writer.String(std::string_view(&event.phase, 1));
      writer.Key("pid");
      writer.Uint(1);
      writer.Key("tid");
      writer.Uint(buffer->tid);
      writer.Key("ts");
      writer.Uint(event.ts_us);
      if (event.phase == 'X') {
        writer.Key("dur");
        writer.Uint(event.dur_us);
      }
      if (event.phase == 'C') {
        // Counter events carry their sample in args; dur_us is the value.
        writer.Key("args");
        writer.BeginObject();
        writer.Key("value");
        writer.Uint(event.dur_us);
        writer.EndObject();
      } else if (event.num_args > 0) {
        writer.Key("args");
        writer.BeginObject();
        for (uint8_t i = 0; i < event.num_args; ++i) {
          writer.Key(event.args[i].key);
          writer.Uint(event.args[i].value);
        }
        writer.EndObject();
      }
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Key("displayTimeUnit");
  writer.String("ms");
  writer.Key("otherData");
  writer.BeginObject();
  writer.Key("recorder");
  writer.String("dvicl");
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) dropped += buffer->dropped;
  writer.Key("dropped_events");
  writer.Uint(dropped);
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

bool TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace dvicl
