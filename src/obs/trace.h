#ifndef DVICL_OBS_TRACE_H_
#define DVICL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dvicl {
namespace obs {

// Low-overhead structured tracing for the DviCL stack, serialized to the
// Chrome trace_event JSON format (loadable in chrome://tracing and
// https://ui.perfetto.dev). The recorder owns one event buffer per
// recording thread, so the hot path appends to thread-private storage with
// no lock and no allocation beyond vector growth; the only synchronized
// operation is the one-time buffer registration per (thread, recorder)
// pair.
//
// Usage convention across the codebase: every tracing call site takes a
// `TraceRecorder*` that may be null, and a null recorder means tracing is
// disabled — the call site pays exactly one branch (see TraceSpan). This is
// how `DviclOptions::trace == nullptr` keeps the non-traced hot path free.
//
// Thread-safety: Add* calls may race with each other from any number of
// threads. Serialization (ToJson / WriteJsonFile / DroppedEvents) must be
// quiescent — call it only after every traced computation has been joined,
// which is the natural shape for the bench harnesses (trace during the
// run, write the file at exit).
class TraceRecorder {
 public:
  // Numeric event argument, rendered into the event's "args" object.
  // Keys must be string literals (the recorder stores the pointer only).
  struct Arg {
    const char* key;
    uint64_t value;
  };

  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Microseconds since recorder construction (steady clock); the time base
  // of every recorded event.
  uint64_t NowMicros() const {
    return MicrosAt(std::chrono::steady_clock::now());
  }

  // Converts an externally captured steady-clock stamp to this recorder's
  // time base, so callers that stamp events before the recorder exists (or
  // once for several recorders) can emit spans with exact timestamps.
  // Stamps before the recorder's epoch clamp to 0.
  uint64_t MicrosAt(std::chrono::steady_clock::time_point tp) const {
    if (tp <= epoch_) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
            .count());
  }

  // Complete event (phase "X"): a span [start_us, start_us + dur_us) on the
  // calling thread's track. `name` and `category` must be string literals.
  void AddComplete(const char* name, const char* category, uint64_t start_us,
                   uint64_t dur_us, std::initializer_list<Arg> args = {});

  // Instant event (phase "i") at the current time on the calling thread.
  void AddInstant(const char* name, const char* category,
                  std::initializer_list<Arg> args = {});

  // Counter event (phase "C"): a sampled value plotted as a track.
  void AddCounter(const char* name, uint64_t value);

  // Number of distinct threads that have recorded at least one event.
  size_t NumThreadsSeen() const;

  // Events discarded because a thread buffer reached its cap. Non-zero
  // means the trace is truncated (reported in the JSON's otherData too).
  uint64_t DroppedEvents() const;

  // Serializes everything recorded so far as a Chrome trace JSON object
  // ({"traceEvents": [...], ...}). Requires quiescence (see class comment).
  std::string ToJson() const;

  // ToJson() to a file; false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    const char* category;
    char phase;  // 'X', 'i' or 'C'
    uint8_t num_args;
    Arg args[2];
    uint64_t ts_us;
    uint64_t dur_us;  // 'X' only
  };

  struct ThreadBuffer {
    std::thread::id thread;
    uint32_t tid;  // registration order, the Chrome "tid" field
    std::vector<Event> events;
    uint64_t dropped = 0;
  };

  // Per-thread buffer cap: past it events are counted as dropped rather
  // than growing without bound (a runaway trace on a huge input would
  // otherwise dwarf the graph itself).
  static constexpr size_t kMaxEventsPerThread = 1 << 20;

  ThreadBuffer* BufferForThisThread();
  void Append(const char* name, const char* category, char phase,
              uint64_t ts_us, uint64_t dur_us,
              std::initializer_list<Arg> args);

  const std::chrono::steady_clock::time_point epoch_;
  const uint64_t recorder_id_;  // process-unique, validates the TL cache

  // Guards the buffers_ vector only, not the pointed-to ThreadBuffers:
  // each buffer is appended to exclusively by its registered thread, and
  // serialization requires quiescence (see class comment).
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ DVICL_GUARDED_BY(mu_);
};

// RAII span: one Chrome complete event from construction to destruction on
// the constructing thread. A null recorder makes the whole object a no-op
// costing one branch per operation — the disabled-tracing hot path.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name,
            const char* category = "dvicl")
      : recorder_(recorder), name_(name), category_(category) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
  }

  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    recorder_->AddComplete(
        name_, category_, start_us_, recorder_->NowMicros() - start_us_,
        num_args_ == 2 ? std::initializer_list<TraceRecorder::Arg>{args_[0],
                                                                   args_[1]}
        : num_args_ == 1
            ? std::initializer_list<TraceRecorder::Arg>{args_[0]}
            : std::initializer_list<TraceRecorder::Arg>{});
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a numeric argument to the event (at most 2; extras are
  // silently ignored). `key` must be a string literal.
  void AddArg(const char* key, uint64_t value) {
    if (recorder_ == nullptr || num_args_ >= 2) return;
    args_[num_args_++] = {key, value};
  }

 private:
  TraceRecorder* const recorder_;
  const char* const name_;
  const char* const category_;
  uint64_t start_us_ = 0;
  uint8_t num_args_ = 0;
  TraceRecorder::Arg args_[2] = {};
};

}  // namespace obs
}  // namespace dvicl

#endif  // DVICL_OBS_TRACE_H_
