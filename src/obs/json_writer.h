#ifndef DVICL_OBS_JSON_WRITER_H_
#define DVICL_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dvicl {
namespace obs {

// Minimal streaming JSON emitter shared by the trace/metrics serializers
// and the bench harnesses (no external JSON dependency is available
// offline). The writer tracks container nesting and comma placement; the
// caller is responsible for a well-formed call sequence (every value inside
// an object must be preceded by Key). Output is compact (no whitespace)
// except for an optional newline between top-level array elements, which
// keeps multi-megabyte trace files diffable and streamable.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);
  void String(std::string_view value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  // Non-finite doubles are emitted as 0 (JSON has no NaN/Inf literal).
  void Double(double value);
  void Bool(bool value);
  void Null();

  const std::string& Str() const { return out_; }
  std::string Take() { return std::move(out_); }

  // Backslash-escapes quotes, control characters and backslashes.
  static std::string Escape(std::string_view raw);

 private:
  // Emits the separating comma before a new value/key when the enclosing
  // container already has an entry.
  void Separate();

  std::string out_;
  std::vector<bool> has_entry_;  // one flag per open container
  bool after_key_ = false;
};

}  // namespace obs
}  // namespace dvicl

#endif  // DVICL_OBS_JSON_WRITER_H_
