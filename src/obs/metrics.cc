#include "obs/metrics.h"

#include <bit>
#include <cstdio>
#include <fstream>

#include "obs/json_writer.h"

namespace dvicl {
namespace obs {

void Histogram::Record(uint64_t value) {
  const int bucket = value == 0 ? 0 : std::bit_width(value);
  buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  const uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer.Key(name);
    writer.Uint(counter->Value());
  }
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer.Key(name);
    writer.Double(gauge->Value());
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    writer.Key(name);
    writer.BeginObject();
    writer.Key("count");
    writer.Uint(histogram->Count());
    writer.Key("sum");
    writer.Uint(histogram->Sum());
    writer.Key("min");
    writer.Uint(histogram->Min());
    writer.Key("max");
    writer.Uint(histogram->Max());
    writer.Key("log2_buckets");
    writer.BeginObject();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t count = histogram->BucketCount(i);
      if (count == 0) continue;
      writer.Key(std::to_string(i));
      writer.Uint(count);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[160];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%-40s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->Value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "%-40s %20.6f\n", name.c_str(),
                  gauge->Value());
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%-40s count=%llu sum=%llu min=%llu max=%llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram->Count()),
                  static_cast<unsigned long long>(histogram->Sum()),
                  static_cast<unsigned long long>(histogram->Min()),
                  static_cast<unsigned long long>(histogram->Max()));
    out += line;
  }
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace dvicl
