#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/json_writer.h"

namespace dvicl {
namespace obs {

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target position among the `count` samples in sorted order, 0-based and
  // continuous so adjacent quantiles interpolate instead of stair-stepping.
  const double rank = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  double result = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[i];
    if (rank >= static_cast<double>(seen) && seen < count) continue;
    if (i == 0) {
      result = 0.0;  // bucket 0 holds exactly the value 0
    } else {
      // Samples in bucket i lie in [2^(i-1), 2^i - 1]; spread the bucket's
      // occupants evenly across that range and interpolate to the rank.
      const double lo = std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i) - 1.0;
      const double in_bucket = static_cast<double>(buckets[i]);
      const double frac =
          in_bucket > 1.0 ? (rank - before) / (in_bucket - 1.0) : 0.5;
      result = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    break;
  }
  // min/max are exact, so use them to sharpen the bucket estimate at the
  // extremes (and make single-sample histograms exact).
  return std::clamp(result, static_cast<double>(min), static_cast<double>(max));
}

void Histogram::Record(uint64_t value) {
  const int bucket = value == 0 ? 0 : std::bit_width(value);
  buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  const uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  uint64_t bucket_total = 0;
  for (int attempt = 0; attempt < 4; ++attempt) {
    // Record() bumps the bucket before count_, so for any count value we
    // read, the matching bucket increments are already visible (acquire
    // pairs with the relaxed adds only via the retry check below, not via
    // ordering — hence the explicit stability test).
    const uint64_t before = count_.load(std::memory_order_acquire);
    bucket_total = 0;
    for (int i = 0; i < kBuckets; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      bucket_total += snap.buckets[i];
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.min = Min();
    snap.max = Max();
    const uint64_t after = count_.load(std::memory_order_acquire);
    if (before == after && bucket_total == after) {
      snap.count = after;
      return snap;
    }
  }
  // Still racing after a few sweeps: publish the bucket total we actually
  // read as the count, preserving the dump invariant count == Σ buckets.
  snap.count = bucket_total;
  return snap;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  const RegistrySnapshot snap = Snapshot();
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    writer.Key(name);
    writer.Uint(value);
  }
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    writer.Key(name);
    writer.Double(value);
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : snap.histograms) {
    writer.Key(name);
    writer.BeginObject();
    writer.Key("count");
    writer.Uint(histogram.count);
    writer.Key("sum");
    writer.Uint(histogram.sum);
    writer.Key("min");
    writer.Uint(histogram.min);
    writer.Key("max");
    writer.Uint(histogram.max);
    writer.Key("p50");
    writer.Double(histogram.Percentile(0.50));
    writer.Key("p90");
    writer.Double(histogram.Percentile(0.90));
    writer.Key("p99");
    writer.Double(histogram.Percentile(0.99));
    writer.Key("log2_buckets");
    writer.BeginObject();
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (histogram.buckets[i] == 0) continue;
      writer.Key(std::to_string(i));
      writer.Uint(histogram.buckets[i]);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

std::string MetricsRegistry::ToText() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out;
  char line[200];
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(line, sizeof(line), "%-40s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(line, sizeof(line), "%-40s %20.6f\n", name.c_str(), value);
    out += line;
  }
  for (const auto& [name, histogram] : snap.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s count=%llu sum=%llu min=%llu max=%llu "
                  "p50=%.1f p99=%.1f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram.count),
                  static_cast<unsigned long long>(histogram.sum),
                  static_cast<unsigned long long>(histogram.min),
                  static_cast<unsigned long long>(histogram.max),
                  histogram.Percentile(0.50), histogram.Percentile(0.99));
    out += line;
  }
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace dvicl
