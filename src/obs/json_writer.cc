#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace dvicl {
namespace obs {

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_entry_.empty()) {
    if (has_entry_.back()) out_.push_back(',');
    has_entry_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_.push_back('{');
  has_entry_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  has_entry_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  out_.push_back('[');
  has_entry_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  has_entry_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  out_.push_back('"');
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
}

void JsonWriter::Uint(uint64_t value) {
  Separate();
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buffer;
}

void JsonWriter::Int(int64_t value) {
  Separate();
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  out_ += buffer;
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) value = 0.0;
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out_ += buffer;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped.push_back(static_cast<char>(c));
        }
    }
  }
  return escaped;
}

}  // namespace obs
}  // namespace dvicl
