#ifndef DVICL_OBS_METRICS_H_
#define DVICL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dvicl {
namespace obs {

// Monotone counter. Handles returned by MetricsRegistry are stable for the
// registry's lifetime, so call sites resolve the name once and then pay a
// single relaxed atomic add per increment.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins sampled value (e.g. peak RSS, wall seconds).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time copy of a Histogram, self-consistent by construction: the
// invariant `count == sum of buckets` always holds (see
// Histogram::Snapshot), so a dump taken while workers record never shows
// torn bucket/count totals. Percentile estimation lives here rather than on
// the live histogram so one snapshot serves many quantile queries without
// re-reading the atomics.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when empty
  uint64_t max = 0;  // 0 when empty
  std::array<uint64_t, kBuckets> buckets = {};

  // Estimated value of the q-quantile (q in [0,1]) by linear interpolation
  // within the matching log2 bucket: the bucket's samples are assumed to
  // be evenly spaced across [2^(i-1), 2^i - 1] (bucket 0 is exactly {0}).
  // The estimate is clamped to [min, max], which makes single-sample and
  // single-bucket-tail cases exact. Returns 0 for an empty histogram.
  double Percentile(double q) const;
};

// Log2-bucketed histogram of non-negative integer samples (bucket i counts
// samples whose bit width is i, i.e. values in [2^(i-1), 2^i)). Coarse by
// design: it answers "what order of magnitude" questions (deque depths,
// leaf sizes, IR subtree sizes) without per-sample allocation.
class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void Record(uint64_t value);

  // Self-consistent point-in-time copy; safe to call while other threads
  // Record() concurrently. The per-field loads cannot be made atomic as a
  // group without a lock, so Snapshot retries until the sample count is
  // stable across the bucket sweep, and otherwise repairs `count` to the
  // bucket total it actually read — the dump invariant
  // (count == sum of buckets) holds on every return path.
  HistogramSnapshot Snapshot() const;

  // Convenience: Snapshot().Percentile(q).
  double Percentile(double q) const { return Snapshot().Percentile(q); }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;  // 0 when empty
  uint64_t Max() const;  // 0 when empty
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// Point-in-time copy of a whole registry: plain values, sorted by name
// (the maps are ordered), safe to serialize or diff without holding the
// registry lock or racing recorders.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// Registry of named counters/gauges/histograms, renderable as JSON (for
// `--metrics=out.json`) and as a human text table. Get* creates on first
// use and returns a stable pointer; names are conventionally dotted paths
// ("task_pool.tasks_stolen", "ir.tree_nodes"). All methods are
// thread-safe; metric mutation through the returned handles is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Self-consistent copy of every metric (see Histogram::Snapshot for the
  // torn-read guarantee). ToJson/ToText render from a snapshot, so a dump
  // racing live recorders is always internally consistent.
  RegistrySnapshot Snapshot() const;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  // sorted, so two runs of a deterministic workload diff cleanly.
  // Histograms include p50/p90/p99 estimates alongside the raw buckets.
  std::string ToJson() const;

  // Fixed-width text rendering for terminal output.
  std::string ToText() const;

  bool WriteJsonFile(const std::string& path) const;

 private:
  // Guards the maps only; metric values behind the returned handles are
  // internally atomic. Ordered between cert-cache shard locks and the
  // access log in the global order (common/mutex.h).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DVICL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DVICL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DVICL_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace dvicl

#endif  // DVICL_OBS_METRICS_H_
