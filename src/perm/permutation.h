#ifndef DVICL_PERM_PERMUTATION_H_
#define DVICL_PERM_PERMUTATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dvicl {

// A permutation gamma of the vertex set 0..n-1 (paper §2). Stored as the
// image array: Image(v) = v^gamma.
class Permutation {
 public:
  Permutation() = default;

  // The identity permutation iota on n points.
  static Permutation Identity(VertexId n);

  // Wraps an image array; `image` must be a bijection onto 0..n-1 (checked
  // by Validate in debug builds and by the factory below in release paths).
  explicit Permutation(std::vector<VertexId> image);

  // Validating factory for untrusted input.
  static Result<Permutation> FromImage(std::vector<VertexId> image);

  // Parses disjoint cycle notation, e.g. "(4,5,6)(0,1)"; points not
  // mentioned map to themselves (paper §2 convention). `n` is the domain
  // size.
  static Result<Permutation> FromCycles(VertexId n, const std::string& text);

  VertexId Size() const { return static_cast<VertexId>(image_.size()); }

  VertexId Image(VertexId v) const { return image_[v]; }
  VertexId operator()(VertexId v) const { return image_[v]; }

  std::span<const VertexId> ImageArray() const { return image_; }

  bool IsIdentity() const;

  // Composition in the paper's action order: (*this).Then(next) maps
  // v -> next(this(v)), i.e. v^{gamma delta}.
  Permutation Then(const Permutation& next) const;

  Permutation Inverse() const;

  // Renders disjoint cycle notation; fixed points are omitted and the
  // identity renders as "()".
  std::string ToCycleString() const;

  friend bool operator==(const Permutation& lhs, const Permutation& rhs) {
    return lhs.image_ == rhs.image_;
  }
  friend bool operator!=(const Permutation& lhs, const Permutation& rhs) {
    return !(lhs == rhs);
  }

 private:
  std::vector<VertexId> image_;
};

// DVICL_DCHECK verifier (no-op unless built with -DDVICL_DCHECK=ON): aborts
// with a diagnostic if gamma's image array is not a bijection onto 0..n-1.
// The Permutation constructor runs this automatically; call it directly
// after operations that rebuild image arrays by hand.
void VerifyPermutation(const Permutation& gamma);

// True iff gamma is an automorphism of `graph`: E^gamma = E (paper §2).
bool IsAutomorphism(const Graph& graph, const Permutation& gamma);

// True iff gamma additionally preserves the coloring: every vertex maps to a
// vertex of the same color.
bool IsColorPreservingAutomorphism(const Graph& graph,
                                   std::span<const uint32_t> colors,
                                   const Permutation& gamma);

}  // namespace dvicl

#endif  // DVICL_PERM_PERMUTATION_H_
