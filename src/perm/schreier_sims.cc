#include "perm/schreier_sims.h"

#include <deque>

#include "common/check.h"
#include "common/failpoint.h"

namespace dvicl {

namespace {

// First point moved by gamma; gamma must not be the identity.
VertexId FirstMovedPoint(const Permutation& gamma) {
  for (VertexId v = 0; v < gamma.Size(); ++v) {
    if (gamma(v) != v) return v;
  }
  DVICL_DCHECK(false) << "FirstMovedPoint called on the identity";
  return 0;
}

}  // namespace

SchreierSims SchreierSims::FromGroup(const PermGroup& group) {
  SchreierSims chain(group.degree());
  for (const Permutation& gamma : group.generators()) {
    chain.AddGenerator(gamma);
  }
  return chain;
}

void SchreierSims::AddGenerator(const Permutation& gamma) {
  // Fault site fires before any chain mutation, so an injected fault can
  // never leave a half-updated stabilizer chain behind.
  if (DVICL_FAILPOINT(failpoint::sites::kSchreierInsert)) {
    throw failpoint::InjectedFault(failpoint::sites::kSchreierInsert);
  }
  Permutation residue;
  size_t level = 0;
  if (Sift(0, gamma, &residue, &level)) return;  // already a member
  InsertRaw(level, std::move(residue));
  CompleteFrom(0);
  // Order spot-check: once the chain is closed again, the generator that
  // was just inserted must sift to the identity — membership is exactly
  // what closure guarantees, so a failure here means a broken transversal.
  DVICL_DCHECK(Contains(gamma))
      << "inserted generator is not a member of the rebuilt chain";
  CheckInvariants();
}

bool SchreierSims::Sift(size_t start, Permutation gamma, Permutation* residue,
                        size_t* level) const {
  for (size_t i = start; i < levels_.size(); ++i) {
    if (gamma.IsIdentity()) return true;
    const Level& lvl = levels_[i];
    const VertexId delta = gamma(lvl.base_point);
    auto it = lvl.transversal.find(delta);
    if (it == lvl.transversal.end()) {
      *residue = std::move(gamma);
      *level = i;
      return false;
    }
    // Divide out the coset representative: gamma * u_delta^{-1} fixes the
    // base point of this level.
    gamma = gamma.Then(it->second.Inverse());
  }
  if (gamma.IsIdentity()) return true;
  *residue = std::move(gamma);
  *level = levels_.size();
  return false;
}

void SchreierSims::InsertRaw(size_t level, Permutation gamma) {
  DVICL_DCHECK(!gamma.IsIdentity());
  if (level == levels_.size()) {
    Level lvl;
    lvl.base_point = FirstMovedPoint(gamma);
    levels_.push_back(std::move(lvl));
  }
  // The generator fixes the base points of all shallower levels (it is a
  // sift residue), so it belongs to this level's stabilizer group.
  levels_[level].generators.push_back(std::move(gamma));
}

void SchreierSims::RebuildOrbit(size_t level) {
  Level& lvl = levels_[level];
  lvl.transversal.clear();
  lvl.transversal.emplace(lvl.base_point, Permutation::Identity(degree_));
  lvl.orbit.assign(1, lvl.base_point);
  std::deque<VertexId> queue = {lvl.base_point};
  while (!queue.empty()) {
    const VertexId point = queue.front();
    queue.pop_front();
    // Effective generators of this level's group: every generator stored at
    // this level or deeper (deeper generators fix even more base points, so
    // they lie in this stabilizer too).
    for (size_t k = level; k < levels_.size(); ++k) {
      for (const Permutation& s : levels_[k].generators) {
        const VertexId next = s(point);
        if (lvl.transversal.find(next) == lvl.transversal.end()) {
          lvl.transversal.emplace(next, lvl.transversal.at(point).Then(s));
          lvl.orbit.push_back(next);
          queue.push_back(next);
        }
      }
    }
  }
}

void SchreierSims::CompleteFrom(size_t level) {
  if (level >= levels_.size()) return;
  // Deeper suffix first: verifying this level sifts Schreier generators
  // through the deeper chain, which must already be closed.
  CompleteFrom(level + 1);

  for (;;) {
    RebuildOrbit(level);
    // Snapshot the orbit in BFS discovery order. Iterating the transversal
    // hash map here used to leak its platform-dependent iteration order
    // into which Schreier generator failed to sift first — and from there
    // into the chain's internal generator set and deeper base points. The
    // discovery-order vector makes the whole chain a deterministic function
    // of the input generator sequence (caught by the determinism lint).
    const std::vector<VertexId> orbit = levels_[level].orbit;

    bool restarted = false;
    for (VertexId point : orbit) {
      for (size_t k = level; k < levels_.size() && !restarted; ++k) {
        for (size_t gi = 0; gi < levels_[k].generators.size(); ++gi) {
          const Permutation& s = levels_[k].generators[gi];
          const Permutation& u_p = levels_[level].transversal.at(point);
          const VertexId q = s(point);
          const Permutation& u_q = levels_[level].transversal.at(q);
          Permutation schreier = u_p.Then(s).Then(u_q.Inverse());
          Permutation residue;
          size_t stuck = 0;
          if (!Sift(level + 1, std::move(schreier), &residue, &stuck)) {
            InsertRaw(stuck, std::move(residue));
            CompleteFrom(level + 1);
            restarted = true;
            break;
          }
        }
      }
      if (restarted) break;
    }
    if (!restarted) return;
  }
}

BigUint SchreierSims::Order() const {
  BigUint order(1);
  for (const Level& lvl : levels_) {
    order *= static_cast<uint64_t>(lvl.transversal.size());
  }
  return order;
}

bool SchreierSims::Contains(const Permutation& gamma) const {
  if (gamma.Size() != degree_) return false;
  Permutation residue;
  size_t level = 0;
  return Sift(0, gamma, &residue, &level);
}

std::vector<VertexId> SchreierSims::Base() const {
  std::vector<VertexId> base;
  base.reserve(levels_.size());
  for (const Level& lvl : levels_) base.push_back(lvl.base_point);
  return base;
}

void SchreierSims::CheckInvariants() const {
#ifdef DVICL_DCHECK_ENABLED
  for (size_t l = 0; l < levels_.size(); ++l) {
    const Level& lvl = levels_[l];
    DVICL_DCHECK_EQ(lvl.orbit.size(), lvl.transversal.size())
        << "level " << l << ": orbit vector and transversal disagree";
    DVICL_DCHECK(!lvl.orbit.empty() && lvl.orbit.front() == lvl.base_point)
        << "level " << l << ": orbit must start at the base point";
    for (const VertexId point : lvl.orbit) {
      const auto it = lvl.transversal.find(point);
      DVICL_DCHECK(it != lvl.transversal.end())
          << "level " << l << ": orbit point " << point
          << " missing from transversal";
      DVICL_DCHECK_EQ(it->second(lvl.base_point), point)
          << "level " << l << ": representative does not map base "
          << lvl.base_point << " to its orbit point";
    }
    DVICL_DCHECK(lvl.transversal.at(lvl.base_point).IsIdentity())
        << "level " << l << ": base point representative must be identity";
    // A generator stored at level l is a sift residue through levels < l,
    // so it must fix every shallower base point.
    for (const Permutation& gen : lvl.generators) {
      for (size_t shallower = 0; shallower < l; ++shallower) {
        DVICL_DCHECK_EQ(gen(levels_[shallower].base_point),
                        levels_[shallower].base_point)
            << "level " << l
            << ": generator moves the base point of level " << shallower;
      }
      DVICL_DCHECK_NE(gen(lvl.base_point), lvl.base_point)
          << "level " << l << ": generator fixes its own base point";
    }
  }
#endif
}

}  // namespace dvicl
