#include "perm/schreier_sims.h"

#include <cassert>
#include <deque>

namespace dvicl {

namespace {

// First point moved by gamma; gamma must not be the identity.
VertexId FirstMovedPoint(const Permutation& gamma) {
  for (VertexId v = 0; v < gamma.Size(); ++v) {
    if (gamma(v) != v) return v;
  }
  assert(false);
  return 0;
}

}  // namespace

SchreierSims SchreierSims::FromGroup(const PermGroup& group) {
  SchreierSims chain(group.degree());
  for (const Permutation& gamma : group.generators()) {
    chain.AddGenerator(gamma);
  }
  return chain;
}

void SchreierSims::AddGenerator(const Permutation& gamma) {
  Permutation residue;
  size_t level = 0;
  if (Sift(0, gamma, &residue, &level)) return;  // already a member
  InsertRaw(level, std::move(residue));
  CompleteFrom(0);
}

bool SchreierSims::Sift(size_t start, Permutation gamma, Permutation* residue,
                        size_t* level) const {
  for (size_t i = start; i < levels_.size(); ++i) {
    if (gamma.IsIdentity()) return true;
    const Level& lvl = levels_[i];
    const VertexId delta = gamma(lvl.base_point);
    auto it = lvl.transversal.find(delta);
    if (it == lvl.transversal.end()) {
      *residue = std::move(gamma);
      *level = i;
      return false;
    }
    // Divide out the coset representative: gamma * u_delta^{-1} fixes the
    // base point of this level.
    gamma = gamma.Then(it->second.Inverse());
  }
  if (gamma.IsIdentity()) return true;
  *residue = std::move(gamma);
  *level = levels_.size();
  return false;
}

void SchreierSims::InsertRaw(size_t level, Permutation gamma) {
  assert(!gamma.IsIdentity());
  if (level == levels_.size()) {
    Level lvl;
    lvl.base_point = FirstMovedPoint(gamma);
    levels_.push_back(std::move(lvl));
  }
  // The generator fixes the base points of all shallower levels (it is a
  // sift residue), so it belongs to this level's stabilizer group.
  levels_[level].generators.push_back(std::move(gamma));
}

void SchreierSims::RebuildOrbit(size_t level) {
  Level& lvl = levels_[level];
  lvl.transversal.clear();
  lvl.transversal.emplace(lvl.base_point, Permutation::Identity(degree_));
  std::deque<VertexId> queue = {lvl.base_point};
  while (!queue.empty()) {
    const VertexId point = queue.front();
    queue.pop_front();
    // Effective generators of this level's group: every generator stored at
    // this level or deeper (deeper generators fix even more base points, so
    // they lie in this stabilizer too).
    for (size_t k = level; k < levels_.size(); ++k) {
      for (const Permutation& s : levels_[k].generators) {
        const VertexId next = s(point);
        if (lvl.transversal.find(next) == lvl.transversal.end()) {
          lvl.transversal.emplace(next, lvl.transversal.at(point).Then(s));
          queue.push_back(next);
        }
      }
    }
  }
}

void SchreierSims::CompleteFrom(size_t level) {
  if (level >= levels_.size()) return;
  // Deeper suffix first: verifying this level sifts Schreier generators
  // through the deeper chain, which must already be closed.
  CompleteFrom(level + 1);

  for (;;) {
    RebuildOrbit(level);
    // Snapshot orbit points; the transversal map is stable within a scan.
    std::vector<VertexId> orbit;
    orbit.reserve(levels_[level].transversal.size());
    for (const auto& [point, rep] : levels_[level].transversal) {
      orbit.push_back(point);
    }

    bool restarted = false;
    for (VertexId point : orbit) {
      for (size_t k = level; k < levels_.size() && !restarted; ++k) {
        for (size_t gi = 0; gi < levels_[k].generators.size(); ++gi) {
          const Permutation& s = levels_[k].generators[gi];
          const Permutation& u_p = levels_[level].transversal.at(point);
          const VertexId q = s(point);
          const Permutation& u_q = levels_[level].transversal.at(q);
          Permutation schreier = u_p.Then(s).Then(u_q.Inverse());
          Permutation residue;
          size_t stuck = 0;
          if (!Sift(level + 1, std::move(schreier), &residue, &stuck)) {
            InsertRaw(stuck, std::move(residue));
            CompleteFrom(level + 1);
            restarted = true;
            break;
          }
        }
      }
      if (restarted) break;
    }
    if (!restarted) return;
  }
}

BigUint SchreierSims::Order() const {
  BigUint order(1);
  for (const Level& lvl : levels_) {
    order *= static_cast<uint64_t>(lvl.transversal.size());
  }
  return order;
}

bool SchreierSims::Contains(const Permutation& gamma) const {
  if (gamma.Size() != degree_) return false;
  Permutation residue;
  size_t level = 0;
  return Sift(0, gamma, &residue, &level);
}

std::vector<VertexId> SchreierSims::Base() const {
  std::vector<VertexId> base;
  base.reserve(levels_.size());
  for (const Level& lvl : levels_) base.push_back(lvl.base_point);
  return base;
}

}  // namespace dvicl
