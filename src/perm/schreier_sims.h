#ifndef DVICL_PERM_SCHREIER_SIMS_H_
#define DVICL_PERM_SCHREIER_SIMS_H_

#include <unordered_map>
#include <vector>

#include "common/big_uint.h"
#include "perm/perm_group.h"
#include "perm/permutation.h"

namespace dvicl {

// Deterministic incremental Schreier-Sims stabilizer chain. Given a
// generating set (e.g. the Aut(G, pi) generators extracted from an
// AutoTree), it computes the exact group order as a BigUint and answers
// membership queries.
//
// This is the group-theoretic machinery the paper leans on via nauty
// ("nauty integrates group-theoretical techniques", §3); we use it to verify
// generator sets in tests and to report |Aut(G)| exactly.
//
// Complexity is the textbook bound (polynomial in degree and generator
// count); it is intended for the moderate degrees that appear in tests and
// table harnesses, not for multi-million-vertex graphs.
class SchreierSims {
 public:
  explicit SchreierSims(VertexId degree) : degree_(degree) {}

  // Builds a chain from all generators of `group`.
  static SchreierSims FromGroup(const PermGroup& group);

  // Adds one generator and restores the chain invariants.
  void AddGenerator(const Permutation& gamma);

  // |<generators>| — the product of basic orbit lengths.
  BigUint Order() const;

  // True iff gamma is an element of the generated group.
  bool Contains(const Permutation& gamma) const;

  // The base points of the chain (for inspection/tests).
  std::vector<VertexId> Base() const;

  // DVICL_DCHECK invariant sweep (no-op unless built with -DDVICL_DCHECK=ON):
  // every transversal representative maps the base point to its orbit point,
  // the base point's representative is the identity, the orbit vector and
  // transversal agree, and every generator stored at a level fixes the base
  // points of all shallower levels. Called automatically after
  // AddGenerator; tests call it directly on hand-built chains.
  void CheckInvariants() const;

 private:
  struct Level {
    VertexId base_point;
    std::vector<Permutation> generators;
    // orbit point -> coset representative u with u(base_point) = point.
    std::unordered_map<VertexId, Permutation> transversal;
    // Orbit points in BFS discovery order. The discovery order is a
    // deterministic function of the generator list (queue order and
    // generator order are both fixed), and it is the ONLY iteration order
    // ever used over the orbit: iterating `transversal` directly would leak
    // the hash-map's platform-dependent order into which Schreier generator
    // sifts first, and from there into the chain's internal structure.
    std::vector<VertexId> orbit;
  };

  // Sifts gamma through levels [start..]; returns true if it reduces to the
  // identity. Otherwise *residue is the non-trivial remainder and *level the
  // chain position where it got stuck (possibly == levels_.size()).
  bool Sift(size_t start, Permutation gamma, Permutation* residue,
            size_t* level) const;

  // Appends `gamma` to the generator list of `level` (creating the level
  // when level == levels_.size()); does not restore closure.
  void InsertRaw(size_t level, Permutation gamma);

  // Recomputes the basic orbit and transversal of `level` under its
  // effective generators (all generators stored at this level or deeper).
  void RebuildOrbit(size_t level);

  // Restores the chain invariant for levels [level..end): every Schreier
  // generator of each level sifts to the identity through the deeper chain.
  void CompleteFrom(size_t level);

  VertexId degree_;
  std::vector<Level> levels_;
};

}  // namespace dvicl

#endif  // DVICL_PERM_SCHREIER_SIMS_H_
