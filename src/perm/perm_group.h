#ifndef DVICL_PERM_PERM_GROUP_H_
#define DVICL_PERM_PERM_GROUP_H_

#include <vector>

#include "perm/permutation.h"

namespace dvicl {

// A permutation group given by a generating set, the form in which DviCL
// (and saucy, per paper §3) reports Aut(G, pi). Orbits are computed by
// union-find closure over the generators; the group order is delegated to
// SchreierSims (schreier_sims.h).
class PermGroup {
 public:
  explicit PermGroup(VertexId degree) : degree_(degree) {}

  // Adds a generator; identity permutations are ignored.
  void AddGenerator(Permutation gamma);

  VertexId degree() const { return degree_; }
  const std::vector<Permutation>& generators() const { return generators_; }

  // Orbit partition of 0..n-1 under the generated group: orbit_id[v] is the
  // minimum vertex of v's orbit.
  std::vector<VertexId> OrbitIds() const;

  // Orbits as vertex lists, sorted by their minimum element; singleton
  // orbits included.
  std::vector<std::vector<VertexId>> Orbits() const;

  // True iff u and v lie in a common orbit (u ~ v, automorphic equivalence,
  // paper §2).
  bool SameOrbit(VertexId u, VertexId v) const;

 private:
  VertexId degree_;
  std::vector<Permutation> generators_;
};

}  // namespace dvicl

#endif  // DVICL_PERM_PERM_GROUP_H_
