#include "perm/perm_group.h"

#include <algorithm>
#include <numeric>

namespace dvicl {

namespace {

// Plain union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(VertexId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;  // keep the minimum as representative
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

void PermGroup::AddGenerator(Permutation gamma) {
  if (gamma.IsIdentity()) return;
  generators_.push_back(std::move(gamma));
}

std::vector<VertexId> PermGroup::OrbitIds() const {
  UnionFind uf(degree_);
  for (const Permutation& gamma : generators_) {
    for (VertexId v = 0; v < degree_; ++v) uf.Union(v, gamma(v));
  }
  std::vector<VertexId> ids(degree_);
  for (VertexId v = 0; v < degree_; ++v) ids[v] = uf.Find(v);
  return ids;
}

std::vector<std::vector<VertexId>> PermGroup::Orbits() const {
  const std::vector<VertexId> ids = OrbitIds();
  std::vector<std::vector<VertexId>> orbits;
  std::vector<VertexId> orbit_index(degree_, static_cast<VertexId>(-1));
  for (VertexId v = 0; v < degree_; ++v) {
    VertexId root = ids[v];
    if (orbit_index[root] == static_cast<VertexId>(-1)) {
      orbit_index[root] = static_cast<VertexId>(orbits.size());
      orbits.emplace_back();
    }
    orbits[orbit_index[root]].push_back(v);
  }
  return orbits;
}

bool PermGroup::SameOrbit(VertexId u, VertexId v) const {
  const std::vector<VertexId> ids = OrbitIds();
  return ids[u] == ids[v];
}

}  // namespace dvicl
