#include "perm/permutation.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <sstream>

#include "common/check.h"

namespace dvicl {

namespace {

bool IsBijection(std::span<const VertexId> image) {
  std::vector<bool> seen(image.size(), false);
  for (VertexId v : image) {
    if (v >= image.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace

void VerifyPermutation(const Permutation& gamma) {
  DVICL_DCHECK(IsBijection(gamma.ImageArray()))
      << "image array of size " << gamma.Size()
      << " is not a bijection onto 0.." << gamma.Size() - 1;
}

Permutation Permutation::Identity(VertexId n) {
  std::vector<VertexId> image(n);
  std::iota(image.begin(), image.end(), 0);
  return Permutation(std::move(image));
}

Permutation::Permutation(std::vector<VertexId> image)
    : image_(std::move(image)) {
  VerifyPermutation(*this);
}

Result<Permutation> Permutation::FromImage(std::vector<VertexId> image) {
  if (!IsBijection(image)) {
    return Status::InvalidArgument("image array is not a bijection");
  }
  return Permutation(std::move(image));
}

Result<Permutation> Permutation::FromCycles(VertexId n,
                                            const std::string& text) {
  std::vector<VertexId> image(n);
  std::iota(image.begin(), image.end(), 0);
  std::vector<bool> used(n, false);

  size_t i = 0;
  auto skip_space = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  };
  skip_space();
  while (i < text.size()) {
    if (text[i] != '(') {
      return Status::InvalidArgument("expected '(' in cycle notation");
    }
    ++i;
    std::vector<VertexId> cycle;
    for (;;) {
      skip_space();
      if (i < text.size() && text[i] == ')') {
        ++i;
        break;
      }
      uint64_t value = 0;
      bool any_digit = false;
      while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
        value = value * 10 + static_cast<uint64_t>(text[i] - '0');
        any_digit = true;
        ++i;
      }
      if (!any_digit || value >= n) {
        return Status::InvalidArgument("bad point in cycle notation");
      }
      if (used[value]) {
        return Status::InvalidArgument("point repeated across cycles");
      }
      used[value] = true;
      cycle.push_back(static_cast<VertexId>(value));
      skip_space();
      if (i < text.size() && (text[i] == ',' || text[i] == ' ')) ++i;
    }
    for (size_t k = 0; k + 1 < cycle.size(); ++k) {
      image[cycle[k]] = cycle[k + 1];
    }
    if (cycle.size() > 1) image[cycle.back()] = cycle.front();
    skip_space();
  }
  return Permutation(std::move(image));
}

bool Permutation::IsIdentity() const {
  for (VertexId v = 0; v < Size(); ++v) {
    if (image_[v] != v) return false;
  }
  return true;
}

Permutation Permutation::Then(const Permutation& next) const {
  DVICL_DCHECK_EQ(Size(), next.Size());
  std::vector<VertexId> image(Size());
  for (VertexId v = 0; v < Size(); ++v) image[v] = next.image_[image_[v]];
  return Permutation(std::move(image));
}

Permutation Permutation::Inverse() const {
  std::vector<VertexId> image(Size());
  for (VertexId v = 0; v < Size(); ++v) image[image_[v]] = v;
  return Permutation(std::move(image));
}

std::string Permutation::ToCycleString() const {
  std::ostringstream out;
  std::vector<bool> done(Size(), false);
  bool any = false;
  for (VertexId v = 0; v < Size(); ++v) {
    if (done[v] || image_[v] == v) continue;
    any = true;
    out << '(';
    VertexId w = v;
    bool first = true;
    do {
      if (!first) out << ',';
      out << w;
      done[w] = true;
      w = image_[w];
      first = false;
    } while (w != v);
    out << ')';
  }
  if (!any) return "()";
  return out.str();
}

bool IsAutomorphism(const Graph& graph, const Permutation& gamma) {
  if (gamma.Size() != graph.NumVertices()) return false;
  for (const Edge& e : graph.Edges()) {
    if (!graph.HasEdge(gamma(e.first), gamma(e.second))) return false;
  }
  return true;
}

bool IsColorPreservingAutomorphism(const Graph& graph,
                                   std::span<const uint32_t> colors,
                                   const Permutation& gamma) {
  if (!colors.empty()) {
    if (colors.size() != graph.NumVertices()) return false;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (colors[v] != colors[gamma(v)]) return false;
    }
  }
  return IsAutomorphism(graph, gamma);
}

}  // namespace dvicl
