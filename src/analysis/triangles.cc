#include "analysis/triangles.h"

#include <algorithm>

namespace dvicl {

namespace {

// Visits every triangle once; the callback returns false to stop early.
template <typename Callback>
void ForEachTriangle(const Graph& graph, Callback&& callback) {
  // For every edge (a, b) with a < b, intersect the forward neighbor
  // ranges: common neighbors c > b close a triangle counted once.
  for (const Edge& e : graph.Edges()) {
    const auto na = graph.Neighbors(e.first);
    const auto nb = graph.Neighbors(e.second);
    auto ia = std::upper_bound(na.begin(), na.end(), e.second);
    auto ib = std::upper_bound(nb.begin(), nb.end(), e.second);
    while (ia != na.end() && ib != nb.end()) {
      if (*ia < *ib) {
        ++ia;
      } else if (*ib < *ia) {
        ++ib;
      } else {
        if (!callback(e.first, e.second, *ia)) return;
        ++ia;
        ++ib;
      }
    }
  }
}

}  // namespace

std::vector<std::vector<VertexId>> EnumerateTriangles(const Graph& graph,
                                                      size_t max_results) {
  std::vector<std::vector<VertexId>> out;
  ForEachTriangle(graph, [&](VertexId a, VertexId b, VertexId c) {
    out.push_back({a, b, c});
    return max_results == 0 || out.size() < max_results;
  });
  return out;
}

uint64_t CountTriangles(const Graph& graph) {
  uint64_t count = 0;
  ForEachTriangle(graph, [&count](VertexId, VertexId, VertexId) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace dvicl
