#include "analysis/max_clique.h"

#include <algorithm>

namespace dvicl {

namespace {

// Branch-and-bound state for maximum clique.
class MaxCliqueSolver {
 public:
  explicit MaxCliqueSolver(const Graph& graph) : graph_(graph) {}

  std::vector<VertexId> Solve() {
    // Initial candidate order: descending degree (classic heuristic).
    std::vector<VertexId> candidates(graph_.NumVertices());
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) candidates[v] = v;
    std::sort(candidates.begin(), candidates.end(),
              [this](VertexId a, VertexId b) {
                return graph_.Degree(a) > graph_.Degree(b);
              });
    std::vector<VertexId> current;
    Expand(candidates, &current);
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  // Greedy coloring bound: candidates are grouped into color classes; a
  // clique can take at most one vertex per class.
  void Expand(std::vector<VertexId> candidates,
              std::vector<VertexId>* current) {
    if (candidates.empty()) {
      if (current->size() > best_.size()) best_ = *current;
      return;
    }
    // Greedy color the candidates; order them by ascending color so the
    // most constrained vertices are tried last (branch on high color
    // first when iterating from the back).
    std::vector<uint32_t> color(candidates.size(), 0);
    std::vector<std::vector<VertexId>> classes;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const VertexId v = candidates[i];
      uint32_t c = 0;
      for (;; ++c) {
        if (c == classes.size()) {
          classes.emplace_back();
          break;
        }
        bool clash = false;
        for (VertexId u : classes[c]) {
          if (graph_.HasEdge(u, v)) {
            clash = true;
            break;
          }
        }
        if (!clash) break;
      }
      classes[c].push_back(v);
      color[i] = c;
    }
    std::vector<std::pair<uint32_t, VertexId>> ordered;
    ordered.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      ordered.emplace_back(color[i], candidates[i]);
    }
    std::sort(ordered.begin(), ordered.end());

    for (size_t i = ordered.size(); i-- > 0;) {
      const auto [c, v] = ordered[i];
      // Bound: current clique + (c+1) color classes cannot beat best.
      if (current->size() + c + 1 <= best_.size()) return;
      current->push_back(v);
      std::vector<VertexId> next;
      for (size_t j = 0; j < i; ++j) {
        if (graph_.HasEdge(ordered[j].second, v)) {
          next.push_back(ordered[j].second);
        }
      }
      Expand(std::move(next), current);
      current->pop_back();
    }
  }

  const Graph& graph_;
  std::vector<VertexId> best_;
};

// Enumerates cliques of exactly `size` by recursive extension over
// candidates greater than the last chosen vertex.
void EnumerateCliques(const Graph& graph, size_t size,
                      std::vector<VertexId>* current,
                      const std::vector<VertexId>& candidates,
                      size_t max_results,
                      std::vector<std::vector<VertexId>>* out) {
  if (max_results != 0 && out->size() >= max_results) return;
  if (current->size() == size) {
    out->push_back(*current);
    return;
  }
  // Bound: not enough candidates left.
  if (current->size() + candidates.size() < size) return;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const VertexId v = candidates[i];
    current->push_back(v);
    std::vector<VertexId> next;
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      if (graph.HasEdge(candidates[j], v)) next.push_back(candidates[j]);
    }
    EnumerateCliques(graph, size, current, next, max_results, out);
    current->pop_back();
    if (max_results != 0 && out->size() >= max_results) return;
  }
}

}  // namespace

std::vector<VertexId> FindMaximumClique(const Graph& graph) {
  if (graph.NumVertices() == 0) return {};
  MaxCliqueSolver solver(graph);
  return solver.Solve();
}

std::vector<std::vector<VertexId>> FindAllCliquesOfSize(const Graph& graph,
                                                        size_t size,
                                                        size_t max_results) {
  std::vector<std::vector<VertexId>> out;
  if (size == 0) return {{}};
  std::vector<VertexId> candidates;
  candidates.reserve(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (graph.Degree(v) + 1 >= size) candidates.push_back(v);
  }
  std::vector<VertexId> current;
  EnumerateCliques(graph, size, &current, candidates, max_results, &out);
  return out;
}

}  // namespace dvicl
