#include "analysis/quotient.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

namespace dvicl {

QuotientGraph BuildQuotient(const Graph& graph,
                            std::span<const VertexId> orbit_ids) {
  assert(orbit_ids.size() == graph.NumVertices());
  QuotientGraph quotient;

  // Dense-renumber the orbit representatives.
  std::unordered_map<VertexId, VertexId> dense;
  dense.reserve(graph.NumVertices());
  quotient.orbit_of.resize(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto [it, inserted] =
        dense.emplace(orbit_ids[v], static_cast<VertexId>(dense.size()));
    quotient.orbit_of[v] = it->second;
    if (inserted) {
      quotient.orbit_size.push_back(0);
    }
    ++quotient.orbit_size[it->second];
  }

  std::vector<Edge> edges;
  edges.reserve(graph.NumEdges());
  for (const Edge& e : graph.Edges()) {
    const VertexId a = quotient.orbit_of[e.first];
    const VertexId b = quotient.orbit_of[e.second];
    if (a != b) edges.emplace_back(a, b);
  }
  quotient.graph = Graph::FromEdges(
      static_cast<VertexId>(quotient.orbit_size.size()), std::move(edges));

  if (graph.NumVertices() > 0) {
    quotient.vertex_ratio =
        static_cast<double>(quotient.graph.NumVertices()) /
        static_cast<double>(graph.NumVertices());
  }
  if (graph.NumEdges() > 0) {
    quotient.edge_ratio = static_cast<double>(quotient.graph.NumEdges()) /
                          static_cast<double>(graph.NumEdges());
  }
  return quotient;
}

double StructureEntropy(VertexId num_vertices,
                        std::span<const VertexId> orbit_ids) {
  if (num_vertices == 0) return 0.0;
  std::unordered_map<VertexId, uint64_t> sizes;
  for (VertexId id : orbit_ids) ++sizes[id];
  double entropy = 0.0;
  const double n = static_cast<double>(num_vertices);
  for (const auto& [id, count] : sizes) {
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double NormalizedStructureEntropy(VertexId num_vertices,
                                  std::span<const VertexId> orbit_ids) {
  if (num_vertices <= 1) return 0.0;
  return StructureEntropy(num_vertices, orbit_ids) /
         std::log2(static_cast<double>(num_vertices));
}

}  // namespace dvicl
