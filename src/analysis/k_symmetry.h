#ifndef DVICL_ANALYSIS_K_SYMMETRY_H_
#define DVICL_ANALYSIS_K_SYMMETRY_H_

#include <cstdint>
#include <vector>

#include "dvicl/dvicl.h"
#include "graph/graph.h"

namespace dvicl {

// k-symmetry anonymization via the AutoTree (paper §1 and [34]): duplicate
// subtrees of the root so each duplicated subtree has at least k symmetric
// siblings, giving every vertex inside them >= k-1 automorphic
// counterparts in the output graph.
//
// Scope (documented substitution): duplication is applied along DivideI
// axes — a copied component is re-attached to the same axis (singleton)
// vertices as its original, which preserves the symmetry argument because
// axis attachments are color-determined. Vertices of the root's axis
// itself (and of components larger than half the graph) are not anonymized;
// `anonymized_fraction` reports the coverage achieved, which is the metric
// the example application prints.
struct KSymmetryResult {
  Graph anonymized;
  // Original vertices keep their ids; copies get fresh ids >= n.
  VertexId original_vertices = 0;
  uint64_t copies_added = 0;
  // Fraction of ORIGINAL vertices with >= k-1 automorphic counterparts in
  // the anonymized graph (by construction; verified in tests via DviCL
  // orbits on the output).
  double anonymized_fraction = 0.0;
};

KSymmetryResult AnonymizeKSymmetry(const Graph& graph,
                                   const DviclResult& dvicl_result,
                                   uint32_t k);

}  // namespace dvicl

#endif  // DVICL_ANALYSIS_K_SYMMETRY_H_
