#ifndef DVICL_ANALYSIS_MAX_CLIQUE_H_
#define DVICL_ANALYSIS_MAX_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// Branch-and-bound maximum clique with a greedy-coloring upper bound
// (Tomita-style), standing in for the paper's reference [22] ("Finding the
// maximum clique in massive graphs", the algorithm whose output feeds the
// SSM clustering of Table 7). Returns one maximum clique as a sorted
// vertex set.
std::vector<VertexId> FindMaximumClique(const Graph& graph);

// All cliques of the given size, as sorted vertex sets. Used with
// size == |maximum clique| to collect every maximum clique for Table 7.
// `max_results` caps the enumeration (0 = unlimited).
std::vector<std::vector<VertexId>> FindAllCliquesOfSize(
    const Graph& graph, size_t size, size_t max_results = 0);

}  // namespace dvicl

#endif  // DVICL_ANALYSIS_MAX_CLIQUE_H_
