#include "analysis/influence_max.h"

#include <algorithm>
#include <queue>

#include "common/rng.h"

namespace dvicl {

namespace {

// One IC simulation: BFS from the seeds where each edge transmits
// independently with probability p. Returns the number of activated
// vertices. `state` is a scratch epoch array to avoid reallocation.
uint32_t SimulateCascade(const Graph& graph,
                         const std::vector<VertexId>& seeds, double p,
                         Rng* rng, std::vector<uint32_t>* state,
                         uint32_t epoch) {
  std::vector<VertexId> frontier(seeds);
  for (VertexId s : seeds) (*state)[s] = epoch;
  uint32_t activated = static_cast<uint32_t>(seeds.size());
  while (!frontier.empty()) {
    const VertexId u = frontier.back();
    frontier.pop_back();
    for (VertexId v : graph.Neighbors(u)) {
      if ((*state)[v] != epoch && rng->NextBernoulli(p)) {
        (*state)[v] = epoch;
        ++activated;
        frontier.push_back(v);
      }
    }
  }
  return activated;
}

}  // namespace

double EstimateSpread(const Graph& graph, const std::vector<VertexId>& seeds,
                      const InfluenceMaxOptions& options) {
  if (seeds.empty()) return 0.0;
  Rng rng(options.seed);
  std::vector<uint32_t> state(graph.NumVertices(), 0);
  uint64_t total = 0;
  for (uint32_t round = 1; round <= options.monte_carlo_rounds; ++round) {
    total += SimulateCascade(graph, seeds, options.edge_probability, &rng,
                             &state, round);
  }
  return static_cast<double>(total) /
         static_cast<double>(options.monte_carlo_rounds);
}

InfluenceMaxResult GreedyInfluenceMaximization(
    const Graph& graph, uint32_t k, const InfluenceMaxOptions& options) {
  InfluenceMaxResult result;
  if (graph.NumVertices() == 0 || k == 0) return result;
  k = std::min<uint32_t>(k, graph.NumVertices());

  // CELF: lazy-greedy over cached marginal gains, valid because the IC
  // spread function is submodular.
  struct Entry {
    double gain;
    VertexId vertex;
    uint32_t round_evaluated;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;
  std::vector<VertexId> pool(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) pool[v] = v;
  if (options.candidate_pool != 0 &&
      options.candidate_pool < graph.NumVertices()) {
    std::partial_sort(pool.begin(), pool.begin() + options.candidate_pool,
                      pool.end(), [&graph](VertexId a, VertexId b) {
                        return graph.Degree(a) > graph.Degree(b);
                      });
    pool.resize(std::max<uint32_t>(options.candidate_pool, k));
  }
  for (VertexId v : pool) {
    // Initial upper bound forces a lazy first-round evaluation.
    heap.push({static_cast<double>(graph.NumVertices()), v, 0});
  }

  double current_spread = 0.0;
  uint32_t round = 1;
  while (result.seeds.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round_evaluated == round) {
      result.seeds.push_back(top.vertex);
      current_spread += top.gain;
      ++round;
      continue;
    }
    std::vector<VertexId> with(result.seeds);
    with.push_back(top.vertex);
    InfluenceMaxOptions eval = options;
    eval.seed = options.seed + top.vertex;  // decorrelate evaluations
    const double spread = EstimateSpread(graph, with, eval);
    heap.push({spread - current_spread, top.vertex, round});
  }
  result.estimated_spread = current_spread;
  return result;
}

}  // namespace dvicl
