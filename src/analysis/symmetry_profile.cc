#include "analysis/symmetry_profile.h"

#include <unordered_map>

#include "analysis/quotient.h"

namespace dvicl {

SymmetryProfile ComputeSymmetryProfile(const Graph& graph,
                                       const DviclResult& result) {
  SymmetryProfile profile;
  profile.aut_order = AutomorphismOrderFromTree(result.tree);

  const auto orbit_ids =
      OrbitIdsFromGenerators(graph.NumVertices(), result.generators);
  std::unordered_map<VertexId, uint64_t> orbit_sizes;
  for (VertexId id : orbit_ids) ++orbit_sizes[id];

  uint64_t symmetric_vertices = 0;
  for (const auto& [id, size] : orbit_sizes) {
    ++profile.num_orbits;
    if (size == 1) {
      ++profile.singleton_orbits;
    } else {
      symmetric_vertices += size;
    }
    profile.largest_orbit = std::max(profile.largest_orbit, size);
  }
  if (graph.NumVertices() > 0) {
    profile.symmetric_vertex_fraction =
        static_cast<double>(symmetric_vertices) /
        static_cast<double>(graph.NumVertices());
  }
  profile.normalized_structure_entropy =
      NormalizedStructureEntropy(graph.NumVertices(), orbit_ids);

  const QuotientGraph quotient = BuildQuotient(graph, orbit_ids);
  profile.quotient_vertex_ratio = quotient.vertex_ratio;
  profile.quotient_edge_ratio = quotient.edge_ratio;
  return profile;
}

}  // namespace dvicl
