#ifndef DVICL_ANALYSIS_CERT_INDEX_H_
#define DVICL_ANALYSIS_CERT_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dvicl/dvicl.h"
#include "graph/certificate.h"
#include "graph/graph.h"

namespace dvicl {

// Database indexing by canonical labeling (paper §1 application (a), after
// Randic et al. [31]): every graph gets a certificate such that two graphs
// are isomorphic iff they share the certificate. The index deduplicates and
// retrieves graphs from a collection by isomorphism class.
class CertificateIndex {
 public:
  explicit CertificateIndex(const DviclOptions& options = {})
      : options_(options) {}

  // Inserts a graph under a caller-supplied id. Returns the isomorphism
  // class index (existing classes are reused), or -1 if the canonical
  // labeling did not complete within the configured budgets.
  int64_t Insert(const std::string& id, const Graph& graph);

  // Ids of all previously inserted graphs isomorphic to `graph`; empty if
  // none (or on an incomplete run, with *ok = false when given).
  std::vector<std::string> FindIsomorphic(const Graph& graph,
                                          bool* ok = nullptr) const;

  size_t NumGraphs() const { return num_graphs_; }
  size_t NumClasses() const { return classes_.size(); }

 private:
  Certificate CertificateOf(const Graph& graph, bool* ok) const;

  DviclOptions options_;
  // certificate -> (class index, member ids). std::map keeps deterministic
  // iteration; certificates compare lexicographically.
  std::map<Certificate, std::pair<int64_t, std::vector<std::string>>>
      classes_;
  size_t num_graphs_ = 0;
};

}  // namespace dvicl

#endif  // DVICL_ANALYSIS_CERT_INDEX_H_
