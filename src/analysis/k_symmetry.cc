#include "analysis/k_symmetry.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dvicl {

KSymmetryResult AnonymizeKSymmetry(const Graph& graph,
                                   const DviclResult& dvicl_result,
                                   uint32_t k) {
  KSymmetryResult result;
  result.original_vertices = graph.NumVertices();

  const AutoTreeNode& root = dvicl_result.tree.Root();
  if (root.is_leaf || root.divided_by_s || k <= 1) {
    // Documented scope: duplication only along a DivideI axis at the root.
    result.anonymized = graph;
    return result;
  }

  // Color multiplicities distinguish axis singletons (singleton cells)
  // from one-vertex components of larger cells.
  std::unordered_map<uint32_t, uint32_t> color_count;
  for (uint32_t c : dvicl_result.colors) ++color_count[c];

  std::vector<Edge> edges = graph.Edges();
  VertexId next_id = graph.NumVertices();
  uint64_t anonymized_vertices = 0;

  // Walk classes of root children (children are sorted by form, classes
  // are consecutive).
  size_t i = 0;
  while (i < root.children.size()) {
    size_t j = i;
    while (j < root.children.size() &&
           root.child_sym_class[j] == root.child_sym_class[i]) {
      ++j;
    }
    const size_t class_size = j - i;
    const AutoTreeNode& representative =
        dvicl_result.tree.Node(root.children[i]);
    const bool axis_singleton =
        representative.IsSingleton() &&
        color_count.at(dvicl_result.colors[representative.vertices[0]]) == 1;

    if (!axis_singleton) {
      for (size_t member = i; member < j; ++member) {
        anonymized_vertices +=
            dvicl_result.tree.Node(root.children[member]).vertices.size();
      }
      for (size_t copy = class_size; copy < k; ++copy) {
        // Clone the representative component: fresh ids for its vertices,
        // internal edges copied, external edges re-attached to the same
        // axis vertices (color-determined, so the copy is symmetric to the
        // original).
        std::unordered_map<VertexId, VertexId> fresh;
        fresh.reserve(representative.vertices.size());
        for (VertexId v : representative.vertices) fresh.emplace(v, next_id++);
        std::unordered_set<VertexId> inside(representative.vertices.begin(),
                                            representative.vertices.end());
        for (VertexId v : representative.vertices) {
          for (VertexId u : graph.Neighbors(v)) {
            if (inside.count(u) != 0) {
              if (v < u) edges.emplace_back(fresh.at(v), fresh.at(u));
            } else {
              edges.emplace_back(fresh.at(v), u);  // axis attachment
            }
          }
        }
        result.copies_added += representative.vertices.size();
      }
    }
    i = j;
  }

  result.anonymized = Graph::FromEdges(next_id, std::move(edges));
  result.anonymized_fraction =
      graph.NumVertices() == 0
          ? 0.0
          : static_cast<double>(anonymized_vertices) /
                static_cast<double>(graph.NumVertices());
  return result;
}

}  // namespace dvicl
