#ifndef DVICL_ANALYSIS_TRIANGLES_H_
#define DVICL_ANALYSIS_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// Triangle enumeration by forward adjacency intersection: each triangle
// {a < b < c} is reported exactly once as a sorted triple. Feeds the
// triangle half of paper Table 7. `max_results` caps the output
// (0 = unlimited).
std::vector<std::vector<VertexId>> EnumerateTriangles(const Graph& graph,
                                                      size_t max_results = 0);

// Triangle count without materializing the triangles.
uint64_t CountTriangles(const Graph& graph);

}  // namespace dvicl

#endif  // DVICL_ANALYSIS_TRIANGLES_H_
