#ifndef DVICL_ANALYSIS_INFLUENCE_MAX_H_
#define DVICL_ANALYSIS_INFLUENCE_MAX_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// Influence maximization under the Independent Cascade model with a
// constant edge probability, as in the paper's §1 experiment setup ("the
// probability to influence one from another is treated as constant",
// following [1]). The seeds are selected greedily with Monte-Carlo spread
// estimation and CELF lazy evaluation — a stand-in for PMC [28] with the
// same output contract (a size-k seed set), which is all the SSM
// application consumes.
struct InfluenceMaxOptions {
  double edge_probability = 0.1;
  uint32_t monte_carlo_rounds = 64;
  uint64_t seed = 12345;
  // When non-zero, only the `candidate_pool` highest-degree vertices are
  // considered as seeds (a pruning in the spirit of PMC's pruned
  // simulations; 0 = every vertex). Greedy over all n vertices costs n
  // Monte-Carlo evaluations for the first seed alone.
  uint32_t candidate_pool = 0;
};

struct InfluenceMaxResult {
  std::vector<VertexId> seeds;       // in selection order
  double estimated_spread = 0.0;     // E[sigma(S)] of the final set
};

InfluenceMaxResult GreedyInfluenceMaximization(
    const Graph& graph, uint32_t k, const InfluenceMaxOptions& options = {});

// Monte-Carlo estimate of the expected IC spread of a fixed seed set.
double EstimateSpread(const Graph& graph, const std::vector<VertexId>& seeds,
                      const InfluenceMaxOptions& options = {});

}  // namespace dvicl

#endif  // DVICL_ANALYSIS_INFLUENCE_MAX_H_
