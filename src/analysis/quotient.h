#ifndef DVICL_ANALYSIS_QUOTIENT_H_
#define DVICL_ANALYSIS_QUOTIENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// Network simplification by symmetry (paper §1 application (d), after
// Xiao et al. [35]): collapsing every Aut(G) orbit to a single vertex
// yields the "quotient", a coarse graining that can be substantially
// smaller than G while preserving key functional properties.
struct QuotientGraph {
  Graph graph;                        // one vertex per orbit
  std::vector<VertexId> orbit_of;     // original vertex -> quotient vertex
  std::vector<uint32_t> orbit_size;   // quotient vertex -> #originals
  // Compression ratios the paper's reference reports.
  double vertex_ratio = 1.0;          // |V(Q)| / |V(G)|
  double edge_ratio = 1.0;            // |E(Q)| / |E(G)|
};

// Builds the quotient from an orbit partition (as produced by
// OrbitIdsFromGenerators): vertices are orbits; two orbits are adjacent iff
// any (equivalently, by symmetry, every) member of one has a neighbor in
// the other. Self-loops arising from intra-orbit edges are dropped (the
// Graph type is simple), which matches the reference's simple-quotient
// variant.
QuotientGraph BuildQuotient(const Graph& graph,
                            std::span<const VertexId> orbit_ids);

// Symmetry-based structure entropy (paper §1 application (c), after Xiao
// et al. [37]): the Shannon entropy of the orbit-size distribution,
//   H = - sum_i (|O_i|/n) log2(|O_i|/n),
// normalized variant divides by log2(n). An asymmetric graph (all orbits
// singleton) maximizes H; a vertex-transitive graph has H = 0 — the
// reference's finding that heterogeneity is negatively correlated with
// symmetry.
double StructureEntropy(VertexId num_vertices,
                        std::span<const VertexId> orbit_ids);
double NormalizedStructureEntropy(VertexId num_vertices,
                                  std::span<const VertexId> orbit_ids);

}  // namespace dvicl

#endif  // DVICL_ANALYSIS_QUOTIENT_H_
