#include "analysis/cert_index.h"

#include "refine/coloring.h"

namespace dvicl {

namespace {

Certificate ComputeCertificate(const Graph& graph,
                               const DviclOptions& options, bool* ok) {
  DviclResult result = DviclCanonicalLabeling(
      graph, Coloring::Unit(graph.NumVertices()), options);
  if (ok != nullptr) *ok = result.completed();
  return std::move(result.certificate);
}

}  // namespace

int64_t CertificateIndex::Insert(const std::string& id, const Graph& graph) {
  bool ok = false;
  Certificate cert = ComputeCertificate(graph, options_, &ok);
  if (!ok) return -1;
  auto [it, inserted] = classes_.try_emplace(
      std::move(cert), static_cast<int64_t>(classes_.size()),
      std::vector<std::string>());
  it->second.second.push_back(id);
  ++num_graphs_;
  return it->second.first;
}

std::vector<std::string> CertificateIndex::FindIsomorphic(const Graph& graph,
                                                          bool* ok) const {
  bool completed = false;
  Certificate cert = ComputeCertificate(graph, options_, &completed);
  if (ok != nullptr) *ok = completed;
  if (!completed) return {};
  auto it = classes_.find(cert);
  if (it == classes_.end()) return {};
  return it->second.second;
}

Certificate CertificateIndex::CertificateOf(const Graph& graph,
                                            bool* ok) const {
  return ComputeCertificate(graph, options_, ok);
}

}  // namespace dvicl
