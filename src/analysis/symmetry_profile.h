#ifndef DVICL_ANALYSIS_SYMMETRY_PROFILE_H_
#define DVICL_ANALYSIS_SYMMETRY_PROFILE_H_

#include <cstdint>

#include "common/big_uint.h"
#include "dvicl/dvicl.h"
#include "graph/graph.h"

namespace dvicl {

// Network-model / network-measurement statistics (paper §1 applications
// (b) and (c)): MacArthur et al. [24] found that "real graphs are richly
// symmetric", and Xiao et al. [37] quantify heterogeneity by a
// symmetry-based structure entropy. A SymmetryProfile bundles everything
// those analyses need, all derived from one DviCL run.
struct SymmetryProfile {
  BigUint aut_order;                  // exact |Aut(G, pi)| from the AutoTree
  uint64_t num_orbits = 0;
  uint64_t singleton_orbits = 0;
  uint64_t largest_orbit = 0;
  // Fraction of vertices with at least one automorphic counterpart —
  // [24]'s headline measure of how symmetric a network is.
  double symmetric_vertex_fraction = 0.0;
  // [37]'s structure entropy of the orbit partition, normalized to [0, 1].
  double normalized_structure_entropy = 0.0;
  // [35]'s quotient compression ratios.
  double quotient_vertex_ratio = 1.0;
  double quotient_edge_ratio = 1.0;
};

SymmetryProfile ComputeSymmetryProfile(const Graph& graph,
                                       const DviclResult& result);

}  // namespace dvicl

#endif  // DVICL_ANALYSIS_SYMMETRY_PROFILE_H_
