#ifndef DVICL_SSM_ISO_BACKTRACK_H_
#define DVICL_SSM_ISO_BACKTRACK_H_

#include <cstdint>
#include <optional>

#include "graph/graph.h"
#include "perm/permutation.h"

namespace dvicl {

// Direct backtracking graph-isomorphism test: searches for a bijection
// g1 -> g2 that preserves adjacency, pruning with equitable-refinement
// colors and per-vertex degree checks. Independent of the canonical
// labeling machinery, so it serves as a differential oracle in tests at
// sizes where enumerating all n! permutations is impossible.
//
// Returns the witness permutation if the graphs are isomorphic, nullopt
// otherwise. `max_steps` bounds the number of backtracking extensions
// (0 = unlimited); when exceeded, *aborted is set (when non-null) and
// nullopt is returned.
std::optional<Permutation> FindIsomorphismBacktracking(
    const Graph& g1, const Graph& g2, uint64_t max_steps = 0,
    bool* aborted = nullptr);

}  // namespace dvicl

#endif  // DVICL_SSM_ISO_BACKTRACK_H_
