#include "ssm/ssm_at.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

namespace dvicl {

SsmIndex::SsmIndex(const Graph& graph, const DviclResult& result)
    : graph_(graph), result_(result) {
  assert(result.completed());
}

uint32_t SsmIndex::DeepestNodeContaining(
    const std::vector<VertexId>& query) const {
  const AutoTree& tree = result_.tree;
  uint32_t lca = tree.LeafOf(query.front());
  for (size_t i = 1; i < query.size(); ++i) {
    uint32_t other = tree.LeafOf(query[i]);
    // Standard two-pointer LCA by depth.
    while (tree.Node(lca).depth > tree.Node(other).depth) {
      lca = static_cast<uint32_t>(tree.Node(lca).parent);
    }
    while (tree.Node(other).depth > tree.Node(lca).depth) {
      other = static_cast<uint32_t>(tree.Node(other).parent);
    }
    while (lca != other) {
      lca = static_cast<uint32_t>(tree.Node(lca).parent);
      other = static_cast<uint32_t>(tree.Node(other).parent);
    }
  }
  return lca;
}

uint32_t SsmIndex::ChildContaining(uint32_t node, VertexId v) const {
  const AutoTree& tree = result_.tree;
  uint32_t current = tree.LeafOf(v);
  while (tree.Node(current).parent != static_cast<int32_t>(node)) {
    assert(tree.Node(current).parent >= 0);
    current = static_cast<uint32_t>(tree.Node(current).parent);
  }
  return current;
}

std::vector<VertexId> SsmIndex::MapBetweenSiblings(
    uint32_t from, uint32_t to, const std::vector<VertexId>& set) const {
  const AutoTreeNode& a = result_.tree.Node(from);
  const AutoTreeNode& b = result_.tree.Node(to);
  std::unordered_map<VertexId, VertexId> by_label;
  by_label.reserve(b.vertices.size());
  for (size_t i = 0; i < b.vertices.size(); ++i) {
    by_label.emplace(b.labels[i], b.vertices[i]);
  }
  std::vector<VertexId> image;
  image.reserve(set.size());
  for (VertexId v : set) image.push_back(by_label.at(a.LabelOf(v)));
  std::sort(image.begin(), image.end());
  return image;
}

std::vector<std::vector<VertexId>> SsmIndex::LeafOrbit(
    const AutoTreeNode& leaf, const std::vector<VertexId>& query,
    size_t max_results, bool* truncated) const {
  std::set<std::vector<VertexId>> orbit;
  std::vector<std::vector<VertexId>> frontier;
  std::vector<VertexId> start(query);
  std::sort(start.begin(), start.end());
  orbit.insert(start);
  frontier.push_back(std::move(start));
  while (!frontier.empty()) {
    std::vector<VertexId> current = std::move(frontier.back());
    frontier.pop_back();
    for (const SparseAut& gen : leaf.leaf_generators) {
      std::vector<VertexId> image;
      image.reserve(current.size());
      for (VertexId v : current) image.push_back(gen.ImageOf(v));
      std::sort(image.begin(), image.end());
      if (max_results != 0 && orbit.size() >= max_results) {
        if (truncated != nullptr) *truncated = true;
        return {orbit.begin(), orbit.end()};
      }
      if (orbit.insert(image).second) frontier.push_back(std::move(image));
    }
  }
  return {orbit.begin(), orbit.end()};
}

std::vector<std::vector<VertexId>> SsmIndex::EnumerateWithin(
    uint32_t node_id, const std::vector<VertexId>& query, size_t max_results,
    bool* truncated) const {
  const AutoTree& tree = result_.tree;
  const AutoTreeNode& node = tree.Node(node_id);
  if (node.is_leaf) return LeafOrbit(node, query, max_results, truncated);

  // Partition the query by the children of this node (Algorithm 6 line 5).
  std::map<uint32_t, std::vector<VertexId>> pieces_by_child;
  for (VertexId v : query) {
    pieces_by_child[ChildContaining(node_id, v)].push_back(v);
  }

  // Position of each queried child in node.children (for sym classes).
  std::unordered_map<uint32_t, size_t> child_position;
  child_position.reserve(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    child_position.emplace(node.children[i], i);
  }

  struct Piece {
    uint32_t home_child;
    uint32_t sym_class;
    std::vector<VertexId> query;
    std::vector<std::vector<VertexId>> images;  // within home_child
  };
  std::vector<Piece> pieces;
  for (auto& [child, piece_query] : pieces_by_child) {
    Piece piece;
    piece.home_child = child;
    piece.sym_class = node.child_sym_class[child_position.at(child)];
    piece.query = std::move(piece_query);
    piece.images = EnumerateWithin(child, piece.query, max_results, truncated);
    pieces.push_back(std::move(piece));
  }

  // Group pieces by symmetry class; collect each class's member children.
  std::map<uint32_t, std::vector<size_t>> class_pieces;
  for (size_t i = 0; i < pieces.size(); ++i) {
    class_pieces[pieces[i].sym_class].push_back(i);
  }
  std::map<uint32_t, std::vector<uint32_t>> class_members;
  for (const auto& [cls, piece_ids] : class_pieces) {
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (node.child_sym_class[i] == cls) {
        class_members[cls].push_back(node.children[i]);
      }
    }
    (void)piece_ids;
  }

  // Enumerate injective assignments class by class, then one image per
  // piece, and emit the (disjoint) union.
  std::set<std::vector<VertexId>> results;
  std::vector<uint32_t> target_of(pieces.size(), 0);
  std::vector<std::vector<VertexId>> current_image(pieces.size());

  // Iterative-over-recursion lambdas: assign classes, then choose images.
  std::vector<std::pair<uint32_t, std::vector<size_t>>> class_list(
      class_pieces.begin(), class_pieces.end());

  std::function<void(size_t)> choose_images = [&](size_t piece_idx) {
    if (max_results != 0 && results.size() >= max_results) return;
    if (piece_idx == pieces.size()) {
      std::vector<VertexId> combined;
      for (size_t i = 0; i < pieces.size(); ++i) {
        // The chosen image lives in pieces[i].home_child coordinates; map
        // it to the assigned target sibling (Algorithm 6 lines 8-9).
        const std::vector<VertexId>* image = &current_image[i];
        if (target_of[i] == pieces[i].home_child) {
          combined.insert(combined.end(), image->begin(), image->end());
        } else {
          std::vector<VertexId> mapped =
              MapBetweenSiblings(pieces[i].home_child, target_of[i], *image);
          combined.insert(combined.end(), mapped.begin(), mapped.end());
        }
      }
      std::sort(combined.begin(), combined.end());
      results.insert(std::move(combined));
      if (max_results != 0 && results.size() >= max_results &&
          truncated != nullptr) {
        *truncated = true;
      }
      return;
    }
    for (const std::vector<VertexId>& image : pieces[piece_idx].images) {
      current_image[piece_idx] = image;
      choose_images(piece_idx + 1);
      if (max_results != 0 && results.size() >= max_results) return;
    }
  };

  std::function<void(size_t, size_t)> assign_class = [&](size_t class_idx,
                                                         size_t piece_pos) {
    if (max_results != 0 && results.size() >= max_results) return;
    if (class_idx == class_list.size()) {
      choose_images(0);
      return;
    }
    const auto& [cls, piece_ids] = class_list[class_idx];
    if (piece_pos == piece_ids.size()) {
      assign_class(class_idx + 1, 0);
      return;
    }
    const size_t piece = piece_ids[piece_pos];
    for (uint32_t member : class_members.at(cls)) {
      bool used = false;
      for (size_t prev = 0; prev < piece_pos && !used; ++prev) {
        used = target_of[piece_ids[prev]] == member;
      }
      if (used) continue;
      target_of[piece] = member;
      assign_class(class_idx, piece_pos + 1);
      if (max_results != 0 && results.size() >= max_results) return;
    }
  };

  assign_class(0, 0);
  return {results.begin(), results.end()};
}

BigUint SsmIndex::CountWithin(uint32_t node_id,
                              const std::vector<VertexId>& query) const {
  const AutoTree& tree = result_.tree;
  const AutoTreeNode& node = tree.Node(node_id);
  if (node.is_leaf) {
    bool truncated = false;
    return BigUint(LeafOrbit(node, query, 0, &truncated).size());
  }

  std::map<uint32_t, std::vector<VertexId>> pieces_by_child;
  for (VertexId v : query) {
    pieces_by_child[ChildContaining(node_id, v)].push_back(v);
  }
  std::unordered_map<uint32_t, size_t> child_position;
  child_position.reserve(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    child_position.emplace(node.children[i], i);
  }
  std::unordered_map<uint32_t, uint64_t> class_size;
  std::unordered_map<uint32_t, uint32_t> class_first_member;
  for (size_t i = 0; i < node.children.size(); ++i) {
    const uint32_t cls = node.child_sym_class[i];
    if (class_size[cls]++ == 0) class_first_member[cls] = node.children[i];
  }

  // Pieces are grouped per symmetry class, and within a class by their
  // image under the label-matching map onto the class's first member:
  // pieces with the same mapped query are interchangeable, so selecting
  // target siblings for them is an unordered choice (binomial), not an
  // injective assignment (falling factorial) — otherwise permuting
  // interchangeable pieces would double-count identical image sets.
  struct ClassPieces {
    // mapped query -> (pieces in the group, count of one representative)
    std::map<std::vector<VertexId>, std::pair<uint64_t, BigUint>> groups;
  };
  std::map<uint32_t, ClassPieces> per_class;
  for (const auto& [child, piece_query] : pieces_by_child) {
    const uint32_t cls = node.child_sym_class[child_position.at(child)];
    const uint32_t anchor = class_first_member.at(cls);
    std::vector<VertexId> key =
        (child == anchor) ? piece_query
                          : MapBetweenSiblings(child, anchor, piece_query);
    std::sort(key.begin(), key.end());
    auto& group = per_class[cls].groups[key];
    if (group.first == 0) group.second = CountWithin(child, piece_query);
    ++group.first;
  }

  BigUint count(1);
  for (const auto& [cls, cp] : per_class) {
    uint64_t remaining = class_size.at(cls);
    for (const auto& [key, group] : cp.groups) {
      const uint64_t m = group.first;
      count *= BigUint::Binomial(remaining, m);
      for (uint64_t i = 0; i < m; ++i) count *= group.second;
      remaining -= m;
    }
  }
  return count;
}

std::vector<std::vector<VertexId>> SsmIndex::SymmetricImages(
    std::vector<VertexId> query, size_t max_results, bool* truncated) const {
  if (truncated != nullptr) *truncated = false;
  std::sort(query.begin(), query.end());
  query.erase(std::unique(query.begin(), query.end()), query.end());
  if (query.empty()) return {{}};

  const AutoTree& tree = result_.tree;
  uint32_t nq = DeepestNodeContaining(query);
  std::vector<std::vector<VertexId>> images =
      EnumerateWithin(nq, query, max_results, truncated);

  // Ascend: map the image set into every symmetric sibling at each
  // ancestor level (Algorithm 6 lines 13-14).
  uint32_t current = nq;
  while (tree.Node(current).parent >= 0) {
    const uint32_t parent = static_cast<uint32_t>(tree.Node(current).parent);
    const AutoTreeNode& pnode = tree.Node(parent);
    size_t position = 0;
    while (pnode.children[position] != current) ++position;
    const uint32_t cls = pnode.child_sym_class[position];

    std::vector<std::vector<VertexId>> extended = images;
    for (size_t i = 0; i < pnode.children.size(); ++i) {
      if (pnode.children[i] == current || pnode.child_sym_class[i] != cls) {
        continue;
      }
      for (const std::vector<VertexId>& image : images) {
        if (max_results != 0 && extended.size() >= max_results) {
          if (truncated != nullptr) *truncated = true;
          break;
        }
        extended.push_back(
            MapBetweenSiblings(current, pnode.children[i], image));
      }
    }
    images = std::move(extended);
    current = parent;
    if (max_results != 0 && images.size() >= max_results) break;
  }
  std::sort(images.begin(), images.end());
  if (max_results != 0 && images.size() > max_results) {
    images.resize(max_results);
  }
  return images;
}

BigUint SsmIndex::CountSymmetricImages(std::vector<VertexId> query) const {
  std::sort(query.begin(), query.end());
  query.erase(std::unique(query.begin(), query.end()), query.end());
  if (query.empty()) return BigUint(1);

  const AutoTree& tree = result_.tree;
  const uint32_t nq = DeepestNodeContaining(query);
  BigUint count = CountWithin(nq, query);

  uint32_t current = nq;
  while (tree.Node(current).parent >= 0) {
    const uint32_t parent = static_cast<uint32_t>(tree.Node(current).parent);
    const AutoTreeNode& pnode = tree.Node(parent);
    size_t position = 0;
    while (pnode.children[position] != current) ++position;
    const uint32_t cls = pnode.child_sym_class[position];
    uint64_t class_size = 0;
    for (uint32_t c : pnode.child_sym_class) class_size += (c == cls) ? 1 : 0;
    count *= class_size;
    current = parent;
  }
  return count;
}

}  // namespace dvicl
