#ifndef DVICL_SSM_SSM_COUNT_H_
#define DVICL_SSM_SSM_COUNT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dvicl/auto_tree.h"
#include "graph/graph.h"

namespace dvicl {

// Subgraph clustering by symmetry (paper Table 7): given a family of
// subgraphs of G (all triangles, all maximum cliques, ...), group them into
// clusters of mutually symmetric subgraphs — orbits of the family under the
// action of Aut(G) given by `generators`.
struct SubgraphClustering {
  // cluster_id[i] = index of the orbit containing subgraphs[i].
  std::vector<uint32_t> cluster_id;
  uint64_t num_clusters = 0;
  uint64_t max_cluster_size = 0;
};

// The family must be closed under the group action (triangles map to
// triangles, maximum cliques to maximum cliques); images that fall outside
// the provided family (possible only if the family was truncated) are
// ignored. Each subgraph must be a sorted vertex set.
SubgraphClustering ClusterSubgraphsBySymmetry(
    VertexId num_vertices, std::span<const SparseAut> generators,
    const std::vector<std::vector<VertexId>>& subgraphs);

}  // namespace dvicl

#endif  // DVICL_SSM_SSM_COUNT_H_
