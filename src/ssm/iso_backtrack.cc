#include "ssm/iso_backtrack.h"

#include <algorithm>
#include <vector>

#include "refine/coloring.h"
#include "refine/refiner.h"

namespace dvicl {

namespace {

class BacktrackSearch {
 public:
  BacktrackSearch(const Graph& g1, const Graph& g2, uint64_t max_steps)
      : g1_(g1), g2_(g2), max_steps_(max_steps) {}

  std::optional<Permutation> Run(bool* aborted) {
    const VertexId n = g1_.NumVertices();
    if (n != g2_.NumVertices() || g1_.NumEdges() != g2_.NumEdges()) {
      return std::nullopt;
    }
    if (n == 0) return Permutation::Identity(0);

    // Equitable refinement gives canonical color offsets on both sides; a
    // vertex can only map to a vertex of the same color, and the cell size
    // sequences must agree.
    Coloring pi1 = Coloring::Unit(n);
    RefineToEquitable(g1_, &pi1);
    Coloring pi2 = Coloring::Unit(n);
    RefineToEquitable(g2_, &pi2);
    if (pi1.CellStarts() != pi2.CellStarts()) return std::nullopt;
    for (VertexId start : pi1.CellStarts()) {
      if (pi1.CellSizeAt(start) != pi2.CellSizeAt(start)) {
        return std::nullopt;
      }
    }
    colors1_ = pi1.ColorOffsets();

    // Candidate pool per color on the g2 side.
    candidates_by_color_.assign(n, {});
    for (VertexId v = 0; v < n; ++v) {
      candidates_by_color_[pi2.ColorOffsets()[v]].push_back(v);
    }

    // Map vertices smallest-cell-first; inside a tie prefer vertices
    // adjacent to already-ordered ones (keeps the adjacency constraints
    // active early).
    order_.resize(n);
    for (VertexId v = 0; v < n; ++v) order_[v] = v;
    std::sort(order_.begin(), order_.end(), [&](VertexId a, VertexId b) {
      const VertexId sa = pi1.CellSizeAt(colors1_[a]);
      const VertexId sb = pi1.CellSizeAt(colors1_[b]);
      if (sa != sb) return sa < sb;
      if (g1_.Degree(a) != g1_.Degree(b)) {
        return g1_.Degree(a) > g1_.Degree(b);
      }
      return a < b;
    });

    map_.assign(n, kUnmapped);
    used_.assign(n, false);
    steps_ = 0;
    aborted_ = false;
    const bool found = Extend(0);
    if (aborted && aborted_) *aborted = true;
    if (!found) return std::nullopt;
    return Permutation(std::vector<VertexId>(map_.begin(), map_.end()));
  }

 private:
  static constexpr VertexId kUnmapped = static_cast<VertexId>(-1);

  bool Extend(VertexId index) {
    if (index == g1_.NumVertices()) return true;
    if (max_steps_ != 0 && ++steps_ > max_steps_) {
      aborted_ = true;
      return false;
    }
    const VertexId u = order_[index];
    for (VertexId candidate : candidates_by_color_[colors1_[u]]) {
      if (used_[candidate]) continue;
      if (g2_.Degree(candidate) != g1_.Degree(u)) continue;
      // Adjacency to every already-mapped vertex must match exactly
      // (induced on the mapped prefix).
      bool consistent = true;
      for (VertexId w : g1_.Neighbors(u)) {
        if (map_[w] != kUnmapped && !g2_.HasEdge(candidate, map_[w])) {
          consistent = false;
          break;
        }
      }
      if (consistent) {
        // Count mapped neighbors on both sides; equal counts plus the edge
        // check above force exact correspondence.
        uint32_t mapped_neighbors_u = 0;
        for (VertexId w : g1_.Neighbors(u)) {
          mapped_neighbors_u += (map_[w] != kUnmapped) ? 1 : 0;
        }
        uint32_t mapped_neighbors_c = 0;
        for (VertexId w : g2_.Neighbors(candidate)) {
          mapped_neighbors_c += used_[w] ? 1 : 0;
        }
        consistent = mapped_neighbors_u == mapped_neighbors_c;
      }
      if (!consistent) continue;

      map_[u] = candidate;
      used_[candidate] = true;
      if (Extend(index + 1)) return true;
      map_[u] = kUnmapped;
      used_[candidate] = false;
      if (aborted_) return false;
    }
    return false;
  }

  const Graph& g1_;
  const Graph& g2_;
  const uint64_t max_steps_;

  std::vector<uint32_t> colors1_;
  std::vector<std::vector<VertexId>> candidates_by_color_;
  std::vector<VertexId> order_;
  std::vector<VertexId> map_;
  std::vector<bool> used_;
  uint64_t steps_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<Permutation> FindIsomorphismBacktracking(const Graph& g1,
                                                       const Graph& g2,
                                                       uint64_t max_steps,
                                                       bool* aborted) {
  if (aborted != nullptr) *aborted = false;
  BacktrackSearch search(g1, g2, max_steps);
  return search.Run(aborted);
}

}  // namespace dvicl
