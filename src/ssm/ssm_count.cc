#include "ssm/ssm_count.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

namespace dvicl {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

SubgraphClustering ClusterSubgraphsBySymmetry(
    VertexId num_vertices, std::span<const SparseAut> generators,
    const std::vector<std::vector<VertexId>>& subgraphs) {
  SubgraphClustering clustering;
  clustering.cluster_id.assign(subgraphs.size(), 0);
  if (subgraphs.empty()) return clustering;

  std::map<std::vector<VertexId>, size_t> index;
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    index.emplace(subgraphs[i], i);
  }

  // Only subgraphs touching a moved vertex can change under a generator, so
  // index subgraphs per vertex and visit moved vertices only. Sparse
  // generators make this near-linear in practice.
  std::unordered_map<VertexId, std::vector<size_t>> containing;
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    for (VertexId v : subgraphs[i]) containing[v].push_back(i);
  }

  UnionFind uf(subgraphs.size());
  std::vector<bool> visited(subgraphs.size(), false);
  for (const SparseAut& gen : generators) {
    std::fill(visited.begin(), visited.end(), false);
    for (const auto& [v, img] : gen.moves) {
      auto it = containing.find(v);
      if (it == containing.end()) continue;
      for (size_t i : it->second) {
        if (visited[i]) continue;
        visited[i] = true;
        std::vector<VertexId> image;
        image.reserve(subgraphs[i].size());
        for (VertexId u : subgraphs[i]) image.push_back(gen.ImageOf(u));
        std::sort(image.begin(), image.end());
        auto found = index.find(image);
        if (found != index.end()) uf.Union(i, found->second);
      }
      (void)img;
    }
  }

  // A single pass over generators is not a full orbit closure in theory
  // (g then h may connect sets no single generator does), but union-find
  // transitivity handles compositions: if g maps A->B and h maps B->C, then
  // A~B and B~C already union A, B, C. Since every image under one
  // generator IS in the family (closure assumption), the orbit relation is
  // exactly the transitive closure of the single-generator relation.
  std::unordered_map<size_t, uint32_t> cluster_of_root;
  std::vector<uint64_t> sizes;
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    const size_t root = uf.Find(i);
    auto [it, inserted] = cluster_of_root.emplace(
        root, static_cast<uint32_t>(cluster_of_root.size()));
    if (inserted) sizes.push_back(0);
    clustering.cluster_id[i] = it->second;
    ++sizes[it->second];
  }
  clustering.num_clusters = sizes.size();
  clustering.max_cluster_size = *std::max_element(sizes.begin(), sizes.end());
  (void)num_vertices;
  return clustering;
}

}  // namespace dvicl
