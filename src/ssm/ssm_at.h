#ifndef DVICL_SSM_SSM_AT_H_
#define DVICL_SSM_SSM_AT_H_

#include <cstdint>
#include <vector>

#include "common/big_uint.h"
#include "dvicl/dvicl.h"
#include "graph/graph.h"

namespace dvicl {

// Symmetric subgraph matching over an AutoTree (paper §6.4, Algorithm 6
// SSM-AT). Given a query q — an induced subgraph of G specified by its
// vertex set — it finds the vertex sets g with g = q^gamma for some
// automorphism gamma of (G, pi).
//
// The index borrows the graph and the DviclResult; both must outlive it.
class SsmIndex {
 public:
  SsmIndex(const Graph& graph, const DviclResult& result);

  // Enumerates all symmetric images of `query` (including `query` itself)
  // as sorted vertex sets. `max_results` caps the enumeration (0 =
  // unlimited); when the cap is hit the result is a prefix of the full
  // answer and *truncated is set when non-null.
  std::vector<std::vector<VertexId>> SymmetricImages(
      std::vector<VertexId> query, size_t max_results = 0,
      bool* truncated = nullptr) const;

  // Counts symmetric images without enumerating them: the product, over
  // the divide-and-conquer recursion, of per-piece counts, injective
  // sibling assignments, and ancestor symmetry-class sizes. This is the
  // estimator behind paper Table 6; it is exact whenever distinct sibling
  // assignments yield distinct images (verified against enumeration in the
  // tests, where it matches on all tested inputs).
  BigUint CountSymmetricImages(std::vector<VertexId> query) const;

 private:
  // Deepest AutoTree node whose vertex set contains all of `query`
  // (Algorithm 6 line 1).
  uint32_t DeepestNodeContaining(const std::vector<VertexId>& query) const;

  // Child of `node` whose subtree contains vertex v.
  uint32_t ChildContaining(uint32_t node, VertexId v) const;

  // Images of `query` inside the subtree of `node` (query fully inside it).
  std::vector<std::vector<VertexId>> EnumerateWithin(
      uint32_t node, const std::vector<VertexId>& query, size_t max_results,
      bool* truncated) const;
  BigUint CountWithin(uint32_t node, const std::vector<VertexId>& query) const;

  // Orbit of `query` under the leaf's automorphism generators.
  std::vector<std::vector<VertexId>> LeafOrbit(
      const AutoTreeNode& leaf, const std::vector<VertexId>& query,
      size_t max_results, bool* truncated) const;

  // Maps a vertex set from sibling `from` to sibling `to` by matching
  // canonical labels.
  std::vector<VertexId> MapBetweenSiblings(
      uint32_t from, uint32_t to, const std::vector<VertexId>& set) const;

  const Graph& graph_;
  const DviclResult& result_;
};

}  // namespace dvicl

#endif  // DVICL_SSM_SSM_AT_H_
