#include "ssm/subgraph_match.h"

#include <algorithm>
#include <set>

namespace dvicl {

namespace {

// Backtracking matcher: maps pattern vertices (in a connectivity-friendly
// order) onto graph vertices, enforcing induced-subgraph consistency.
class Matcher {
 public:
  Matcher(const Graph& graph, const std::vector<VertexId>& pattern,
          size_t max_results)
      : graph_(graph), pattern_(pattern), max_results_(max_results) {
    // Degree of each pattern vertex inside the pattern (the induced
    // subgraph): a candidate needs at least that many graph neighbors.
    pattern_degree_.assign(pattern_.size(), 0);
    for (size_t i = 0; i < pattern_.size(); ++i) {
      for (size_t j = 0; j < pattern_.size(); ++j) {
        if (i != j && graph_.HasEdge(pattern_[i], pattern_[j])) {
          ++pattern_degree_[i];
        }
      }
    }
    // Order pattern vertices so each (after the first) is adjacent to an
    // earlier one when possible; this makes candidate sets neighbor lists.
    std::vector<bool> placed(pattern_.size(), false);
    order_.reserve(pattern_.size());
    for (size_t step = 0; step < pattern_.size(); ++step) {
      size_t best = pattern_.size();
      for (size_t i = 0; i < pattern_.size(); ++i) {
        if (placed[i]) continue;
        bool connected = false;
        for (size_t j : order_) {
          if (graph_.HasEdge(pattern_[i], pattern_[j])) {
            connected = true;
            break;
          }
        }
        if (connected) {
          best = i;
          break;
        }
        if (best == pattern_.size()) best = i;
      }
      placed[best] = true;
      order_.push_back(best);
    }
  }

  std::vector<std::vector<VertexId>> Run() {
    assignment_.assign(pattern_.size(), 0);
    Extend(0);
    return {results_.begin(), results_.end()};
  }

 private:
  bool Full() const {
    return max_results_ != 0 && results_.size() >= max_results_;
  }

  void Extend(size_t step) {
    if (Full()) return;
    if (step == pattern_.size()) {
      std::vector<VertexId> image(assignment_);
      std::sort(image.begin(), image.end());
      results_.insert(std::move(image));
      return;
    }
    const size_t pi = order_[step];
    const VertexId p = pattern_[pi];

    // Candidates: neighbors of an already-mapped pattern neighbor, else all
    // vertices with sufficient degree.
    std::vector<VertexId> candidates;
    bool have_anchor = false;
    for (size_t prev = 0; prev < step; ++prev) {
      if (graph_.HasEdge(p, pattern_[order_[prev]])) {
        const auto span = graph_.Neighbors(assignment_[order_[prev]]);
        candidates.assign(span.begin(), span.end());
        have_anchor = true;
        break;
      }
    }
    if (!have_anchor) {
      candidates.resize(graph_.NumVertices());
      for (VertexId v = 0; v < graph_.NumVertices(); ++v) candidates[v] = v;
    }

    for (VertexId candidate : candidates) {
      if (Full()) return;
      if (graph_.Degree(candidate) < pattern_degree_[pi]) continue;
      bool used = false;
      for (size_t prev = 0; prev < step && !used; ++prev) {
        used = assignment_[order_[prev]] == candidate;
      }
      if (used) continue;
      bool consistent = true;
      for (size_t prev = 0; prev < step && consistent; ++prev) {
        const bool pattern_edge = graph_.HasEdge(p, pattern_[order_[prev]]);
        const bool image_edge =
            graph_.HasEdge(candidate, assignment_[order_[prev]]);
        consistent = pattern_edge == image_edge;
      }
      if (!consistent) continue;
      assignment_[pi] = candidate;
      Extend(step + 1);
    }
  }

  const Graph& graph_;
  const std::vector<VertexId>& pattern_;
  const size_t max_results_;
  std::vector<uint32_t> pattern_degree_;
  std::vector<size_t> order_;
  std::vector<VertexId> assignment_;
  std::set<std::vector<VertexId>> results_;
};

}  // namespace

std::vector<std::vector<VertexId>> FindInducedSubgraphs(
    const Graph& graph, const std::vector<VertexId>& pattern,
    size_t max_results) {
  if (pattern.empty()) return {{}};
  Matcher matcher(graph, pattern, max_results);
  return matcher.Run();
}

}  // namespace dvicl
