#ifndef DVICL_SSM_SUBGRAPH_MATCH_H_
#define DVICL_SSM_SUBGRAPH_MATCH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dvicl {

// Generic induced-subgraph isomorphism enumeration (VF2-style backtracking
// with degree pruning): finds every vertex set S of `graph` whose induced
// subgraph is isomorphic to the subgraph induced by `pattern` (a vertex set
// of `graph` itself, as in SSM where the query must exist in G). Results
// are sorted vertex sets, deduplicated (one entry per vertex SET, not per
// mapping), and include `pattern` itself.
//
// This is the paper's baseline "SM" (Algorithm 6 line 3 uses an existing
// subgraph-matching algorithm on leaf nodes); it is also what §6.4 argues
// SSM-AT beats: SM enumerates all isomorphic copies, most of which are not
// symmetric to the query, and verifying symmetry needs extra work.
//
// `max_results` caps the output (0 = unlimited).
std::vector<std::vector<VertexId>> FindInducedSubgraphs(
    const Graph& graph, const std::vector<VertexId>& pattern,
    size_t max_results = 0);

}  // namespace dvicl

#endif  // DVICL_SSM_SUBGRAPH_MATCH_H_
